package stats

import (
	"math"
	"testing"
)

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 || w.CI95() != 0 {
		t.Fatalf("zero-value accumulator should report all zeros, got n=%d mean=%v var=%v", w.N(), w.Mean(), w.Variance())
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(42.5)
	if w.N() != 1 {
		t.Fatalf("n = %d, want 1", w.N())
	}
	if w.Mean() != 42.5 {
		t.Errorf("mean = %v, want 42.5", w.Mean())
	}
	// One sample has no dispersion estimate: everything downstream of
	// variance must be zero, not NaN.
	if w.Variance() != 0 || w.StdDev() != 0 || w.StdErr() != 0 || w.CI95() != 0 {
		t.Errorf("single sample dispersion: var=%v stddev=%v stderr=%v ci=%v, want all 0",
			w.Variance(), w.StdDev(), w.StdErr(), w.CI95())
	}
}

func TestWelfordConstantSeries(t *testing.T) {
	var w Welford
	for i := 0; i < 1000; i++ {
		w.Add(3.14159)
	}
	if w.N() != 1000 {
		t.Fatalf("n = %d, want 1000", w.N())
	}
	if math.Abs(w.Mean()-3.14159) > 1e-12 {
		t.Errorf("mean = %v, want 3.14159", w.Mean())
	}
	if w.Variance() != 0 {
		t.Errorf("constant series variance = %v, want exactly 0", w.Variance())
	}
	if w.CI95() != 0 {
		t.Errorf("constant series CI95 = %v, want 0", w.CI95())
	}
}

func TestWelfordKnownSeries(t *testing.T) {
	// 2, 4, 4, 4, 5, 5, 7, 9: mean 5, population variance 4, sample
	// variance 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got, want := w.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("variance = %v, want %v", got, want)
	}
	wantSE := math.Sqrt(32.0/7.0) / math.Sqrt(8)
	if got := w.StdErr(); math.Abs(got-wantSE) > 1e-12 {
		t.Errorf("stderr = %v, want %v", got, wantSE)
	}
	if got := w.CI95(); math.Abs(got-1.96*wantSE) > 1e-12 {
		t.Errorf("ci95 = %v, want %v", got, 1.96*wantSE)
	}
}

func TestWelfordMerge(t *testing.T) {
	xs := []float64{1.5, -2, 8, 0.25, 100, -7, 3, 3, 42, 0}
	for split := 0; split <= len(xs); split++ {
		var a, b, all Welford
		for i, x := range xs {
			all.Add(x)
			if i < split {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		if a.N() != all.N() {
			t.Fatalf("split %d: merged n = %d, want %d", split, a.N(), all.N())
		}
		if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
			t.Errorf("split %d: merged mean = %v, sequential %v", split, a.Mean(), all.Mean())
		}
		if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
			t.Errorf("split %d: merged variance = %v, sequential %v", split, a.Variance(), all.Variance())
		}
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging an empty accumulator changes nothing
	if a != before {
		t.Errorf("merge(empty) changed state: %+v -> %+v", before, a)
	}
	b.Merge(a) // merging into an empty one adopts the other's state
	if b != a {
		t.Errorf("empty.Merge: %+v, want %+v", b, a)
	}
}
