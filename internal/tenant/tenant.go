// Package tenant is pearld's multi-tenant policy layer: API-token
// authentication, per-tenant request rate limits (token bucket) and
// max-in-flight quotas, plus the fair-share weight the scheduler uses.
//
// Policy comes from a JSON file (the daemon's -tenants flag):
//
//	{
//	 "tenants": [
//	  {"name": "alice", "token": "tok-alice", "weight": 4,
//	   "rate_per_sec": 10, "burst": 20, "max_in_flight": 64,
//	   "admin": true},
//	  {"name": "bob", "token": "tok-bob"}
//	 ]
//	}
//
// The file is hot-reloadable: Reload re-reads it and swaps the limits
// while preserving each surviving tenant's runtime state (bucket level
// and in-flight count), so a reload never resets a tenant's quota
// accounting mid-flight. With no file configured the registry is
// disabled and every request maps to the anonymous tenant with no
// limits — existing single-tenant deployments keep working unchanged.
package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// AnonymousName is the tenant every request maps to when no tenants
// file is configured.
const AnonymousName = "anonymous"

// Limits is the operator-configured policy for one tenant, as it
// appears in the tenants file.
type Limits struct {
	// Name identifies the tenant in metrics and job status.
	Name string `json:"name"`
	// Token is the bearer credential requests present.
	Token string `json:"token"`
	// Weight is the fair-share scheduling weight (default 1): a
	// weight-2 tenant drains its queue twice as fast as a weight-1 one
	// under contention.
	Weight int `json:"weight,omitempty"`
	// RatePerSec refills the request token bucket; 0 means unlimited.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst caps the bucket (default max(RatePerSec, 1)).
	Burst float64 `json:"burst,omitempty"`
	// MaxInFlight caps the tenant's live (non-terminal) jobs, counting
	// every expanded batch point; 0 means unlimited.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// MaxStreams caps the tenant's concurrently open event streams
	// (SSE); 0 defers to the server's default cap.
	MaxStreams int `json:"max_streams,omitempty"`
	// Admin marks tenants allowed to hit the admin endpoints
	// (tenants-file reload).
	Admin bool `json:"admin,omitempty"`
}

// file is the on-disk shape.
type file struct {
	Tenants []Limits `json:"tenants"`
}

// Tenant is one authenticated principal: its current limits plus the
// runtime state those limits meter (bucket level, in-flight count).
// All fields are guarded by mu; Tenants are shared across requests and
// survive reloads.
type Tenant struct {
	mu       sync.Mutex
	limits   Limits
	tokens   float64 // request-bucket level
	last     time.Time
	inflight int
	streams  int
}

func newTenant(l Limits) *Tenant {
	l = l.withDefaults()
	return &Tenant{limits: l, tokens: l.Burst, last: time.Now()}
}

func (l Limits) withDefaults() Limits {
	if l.Weight <= 0 {
		l.Weight = 1
	}
	if l.Burst <= 0 {
		l.Burst = l.RatePerSec
		if l.Burst < 1 {
			l.Burst = 1
		}
	}
	return l
}

// setLimits swaps the policy while preserving runtime state; the bucket
// is clamped to the new burst so shrinking a limit takes effect at
// once.
func (t *Tenant) setLimits(l Limits) {
	l = l.withDefaults()
	t.mu.Lock()
	t.limits = l
	if t.tokens > l.Burst {
		t.tokens = l.Burst
	}
	t.mu.Unlock()
}

// Name returns the tenant's stable identity.
func (t *Tenant) Name() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.limits.Name
}

// Weight returns the fair-share scheduling weight (>= 1).
func (t *Tenant) Weight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.limits.Weight
}

// Admin reports whether the tenant may call admin endpoints.
func (t *Tenant) Admin() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.limits.Admin
}

// AllowRequest charges one request against the tenant's token bucket.
// When the bucket is empty it returns false and how long until the
// next token accrues — the Retry-After the caller should surface.
func (t *Tenant) AllowRequest(now time.Time) (bool, time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limits.RatePerSec <= 0 {
		return true, 0
	}
	if dt := now.Sub(t.last); dt > 0 {
		t.tokens += dt.Seconds() * t.limits.RatePerSec
		if t.tokens > t.limits.Burst {
			t.tokens = t.limits.Burst
		}
		t.last = now
	}
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	return false, time.Duration((1 - t.tokens) / t.limits.RatePerSec * float64(time.Second))
}

// AcquireSlots reserves n in-flight job slots, all or nothing; callers
// release each slot with ReleaseSlot as its job reaches a terminal
// state. False means the quota would be exceeded.
func (t *Tenant) AcquireSlots(n int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limits.MaxInFlight > 0 && t.inflight+n > t.limits.MaxInFlight {
		return false
	}
	t.inflight += n
	return true
}

// ReleaseSlot returns one in-flight slot.
func (t *Tenant) ReleaseSlot() {
	t.mu.Lock()
	if t.inflight > 0 {
		t.inflight--
	}
	t.mu.Unlock()
}

// AcquireStream reserves one concurrent-stream slot against the
// tenant's max_streams limit, deferring to fallback (the server's
// default cap) when the tenant has none configured; fallback <= 0
// means uncapped. Callers must pair a successful acquire with
// ReleaseStream when the stream closes — including on abandoned
// connections.
func (t *Tenant) AcquireStream(fallback int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	limit := t.limits.MaxStreams
	if limit <= 0 {
		limit = fallback
	}
	if limit > 0 && t.streams >= limit {
		return false
	}
	t.streams++
	return true
}

// ReleaseStream returns one concurrent-stream slot.
func (t *Tenant) ReleaseStream() {
	t.mu.Lock()
	if t.streams > 0 {
		t.streams--
	}
	t.mu.Unlock()
}

// Streams reports the tenant's currently open event streams.
func (t *Tenant) Streams() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.streams
}

// InFlight reports the tenant's live job count.
func (t *Tenant) InFlight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.inflight
}

// MaxInFlight reports the quota (0 = unlimited).
func (t *Tenant) MaxInFlight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.limits.MaxInFlight
}

// Registry maps API tokens to tenants. A registry opened without a
// path is disabled: Lookup resolves every token (including none) to
// the anonymous tenant, so authentication is a no-op until the
// operator opts in.
type Registry struct {
	path string
	anon *Tenant

	mu      sync.Mutex
	byToken map[string]*Tenant
	byName  map[string]*Tenant
}

// Open loads the tenants file at path, or returns a disabled registry
// when path is empty. A file that exists but does not parse or
// validate is a boot error — a daemon never starts half-authenticated.
func Open(path string) (*Registry, error) {
	r := &Registry{
		path:    path,
		anon:    newTenant(Limits{Name: AnonymousName}),
		byToken: map[string]*Tenant{},
		byName:  map[string]*Tenant{},
	}
	if path == "" {
		return r, nil
	}
	if err := r.Reload(); err != nil {
		return nil, err
	}
	return r, nil
}

// Enabled reports whether token authentication is configured.
func (r *Registry) Enabled() bool { return r.path != "" }

// Anonymous returns the default tenant used when the registry is
// disabled.
func (r *Registry) Anonymous() *Tenant { return r.anon }

// Reload re-reads the tenants file and swaps the limits in. Tenants
// that persist (by name) keep their runtime state; new ones start
// fresh; removed ones stop resolving (their in-flight jobs still
// release against the old Tenant value harmlessly). On any error the
// previous state is kept — a bad edit cannot lock every client out.
func (r *Registry) Reload() error {
	if r.path == "" {
		return fmt.Errorf("tenant: no tenants file configured")
	}
	raw, err := os.ReadFile(r.path)
	if err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	var f file
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("tenant: parsing %s: %w", r.path, err)
	}
	if err := validate(f.Tenants); err != nil {
		return fmt.Errorf("tenant: %s: %w", r.path, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	byToken := make(map[string]*Tenant, len(f.Tenants))
	byName := make(map[string]*Tenant, len(f.Tenants))
	for _, l := range f.Tenants {
		t, ok := r.byName[l.Name]
		if ok {
			t.setLimits(l)
		} else {
			t = newTenant(l)
		}
		byToken[l.Token] = t
		byName[l.Name] = t
	}
	r.byToken, r.byName = byToken, byName
	return nil
}

func validate(ts []Limits) error {
	if len(ts) == 0 {
		return fmt.Errorf("no tenants defined")
	}
	names := map[string]bool{}
	tokens := map[string]bool{}
	for i, l := range ts {
		if l.Name == "" || l.Name == AnonymousName {
			return fmt.Errorf("tenant %d: name %q is empty or reserved", i, l.Name)
		}
		if len(l.Token) < 4 {
			return fmt.Errorf("tenant %q: token must be at least 4 characters", l.Name)
		}
		if names[l.Name] {
			return fmt.Errorf("duplicate tenant name %q", l.Name)
		}
		if tokens[l.Token] {
			return fmt.Errorf("tenant %q: token already assigned", l.Name)
		}
		if l.Weight < 0 || l.RatePerSec < 0 || l.Burst < 0 || l.MaxInFlight < 0 || l.MaxStreams < 0 {
			return fmt.Errorf("tenant %q: negative limit", l.Name)
		}
		names[l.Name], tokens[l.Token] = true, true
	}
	return nil
}

// Lookup resolves a bearer token. A disabled registry resolves
// anything (the anonymous tenant); an enabled one resolves only
// configured tokens.
func (r *Registry) Lookup(token string) (*Tenant, bool) {
	if !r.Enabled() {
		return r.anon, true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byToken[token]
	return t, ok
}

// Len reports the configured tenant count (0 when disabled).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byName)
}

// InFlight snapshots each configured tenant's live job count (plus
// the anonymous tenant when it has any), for metrics attribution.
func (r *Registry) InFlight() map[string]int {
	r.mu.Lock()
	tenants := make([]*Tenant, 0, len(r.byName)+1)
	for _, t := range r.byName {
		tenants = append(tenants, t)
	}
	r.mu.Unlock()
	out := make(map[string]int, len(tenants)+1)
	for _, t := range tenants {
		out[t.Name()] = t.InFlight()
	}
	if n := r.anon.InFlight(); n > 0 || !r.Enabled() {
		out[AnonymousName] = n
	}
	return out
}

// Names lists the configured tenant names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}
