package tenant

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeTenants marshals a tenants file into dir and returns its path.
func writeTenants(t *testing.T, dir string, ts ...Limits) string {
	t.Helper()
	raw, err := json.Marshal(file{Tenants: ts})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDisabledRegistryResolvesEverythingToAnonymous(t *testing.T) {
	r, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if r.Enabled() {
		t.Fatal("empty path should leave the registry disabled")
	}
	for _, tok := range []string{"", "whatever", "tok-alice"} {
		tn, ok := r.Lookup(tok)
		if !ok || tn.Name() != AnonymousName {
			t.Fatalf("Lookup(%q) = (%v, %v), want anonymous tenant", tok, tn, ok)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("disabled registry Len = %d, want 0", r.Len())
	}
	// The anonymous tenant is unlimited: no rate limit, no quota.
	anon := r.Anonymous()
	if ok, _ := anon.AllowRequest(time.Now()); !ok {
		t.Fatal("anonymous tenant should never be rate limited")
	}
	if !anon.AcquireSlots(1 << 20) {
		t.Fatal("anonymous tenant should never hit a quota")
	}
}

func TestOpenRejectsInvalidFiles(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		label   string
		tenants []Limits
	}{
		{"empty set", nil},
		{"reserved name", []Limits{{Name: AnonymousName, Token: "tok-anon"}}},
		{"empty name", []Limits{{Name: "", Token: "tok-x"}}},
		{"short token", []Limits{{Name: "a", Token: "abc"}}},
		{"duplicate name", []Limits{
			{Name: "a", Token: "tok-a1"}, {Name: "a", Token: "tok-a2"}}},
		{"duplicate token", []Limits{
			{Name: "a", Token: "tok-same"}, {Name: "b", Token: "tok-same"}}},
		{"negative limit", []Limits{{Name: "a", Token: "tok-a", MaxInFlight: -1}}},
	}
	for _, tc := range cases {
		path := writeTenants(t, dir, tc.tenants...)
		if _, err := Open(path); err == nil {
			t.Errorf("%s: Open accepted an invalid tenants file", tc.label)
		}
	}
	if _, err := Open(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Open accepted a nonexistent path")
	}
}

func TestLookupResolvesOnlyConfiguredTokens(t *testing.T) {
	path := writeTenants(t, t.TempDir(),
		Limits{Name: "alice", Token: "tok-alice", Weight: 4},
		Limits{Name: "bob", Token: "tok-bob"})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Enabled() || r.Len() != 2 {
		t.Fatalf("enabled=%v len=%d, want true/2", r.Enabled(), r.Len())
	}
	tn, ok := r.Lookup("tok-alice")
	if !ok || tn.Name() != "alice" || tn.Weight() != 4 {
		t.Fatalf("Lookup(tok-alice) = (%v, %v)", tn, ok)
	}
	for _, bad := range []string{"", "tok-mallory"} {
		if _, ok := r.Lookup(bad); ok {
			t.Fatalf("Lookup(%q) resolved on an enabled registry", bad)
		}
	}
	if got := r.Names(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("Names() = %v, want [alice bob]", got)
	}
}

func TestTokenBucketRefillsAtRate(t *testing.T) {
	tn := newTenant(Limits{Name: "a", Token: "tok-a", RatePerSec: 10, Burst: 2})
	now := time.Now()
	for i := 0; i < 2; i++ {
		if ok, _ := tn.AllowRequest(now); !ok {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	ok, retry := tn.AllowRequest(now)
	if ok {
		t.Fatal("request beyond burst allowed")
	}
	// 10/s refill: the next whole token is 100ms out.
	if retry <= 0 || retry > 150*time.Millisecond {
		t.Fatalf("retry hint %v, want ~100ms", retry)
	}
	if ok, _ := tn.AllowRequest(now.Add(retry)); !ok {
		t.Fatal("request after the hinted wait still denied")
	}
	// The bucket caps at burst: a long idle period banks at most 2.
	later := now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := tn.AllowRequest(later); !ok {
			t.Fatalf("post-idle request %d denied", i)
		}
	}
	if ok, _ := tn.AllowRequest(later); ok {
		t.Fatal("idle time banked more than burst tokens")
	}
}

func TestQuotaIsAllOrNothing(t *testing.T) {
	tn := newTenant(Limits{Name: "a", Token: "tok-a", MaxInFlight: 4})
	if !tn.AcquireSlots(3) {
		t.Fatal("3 of 4 slots denied")
	}
	if tn.AcquireSlots(2) {
		t.Fatal("acquiring 2 with 1 free should fail whole, not truncate")
	}
	if tn.InFlight() != 3 {
		t.Fatalf("failed acquire leaked slots: inflight=%d, want 3", tn.InFlight())
	}
	if !tn.AcquireSlots(1) {
		t.Fatal("last slot denied")
	}
	tn.ReleaseSlot()
	tn.ReleaseSlot()
	if tn.InFlight() != 2 {
		t.Fatalf("inflight=%d after two releases, want 2", tn.InFlight())
	}
	// Release never goes negative, even if over-called.
	for i := 0; i < 5; i++ {
		tn.ReleaseSlot()
	}
	if tn.InFlight() != 0 {
		t.Fatalf("inflight=%d, want 0", tn.InFlight())
	}
}

func TestReloadPreservesRuntimeState(t *testing.T) {
	dir := t.TempDir()
	path := writeTenants(t, dir,
		Limits{Name: "alice", Token: "tok-alice", RatePerSec: 100, Burst: 100, MaxInFlight: 10},
		Limits{Name: "bob", Token: "tok-bob"})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := r.Lookup("tok-alice")
	if !alice.AcquireSlots(7) {
		t.Fatal("seeding in-flight state failed")
	}

	// Reload with a rotated token, a shrunk burst and bob removed.
	writeTenants(t, dir,
		Limits{Name: "alice", Token: "tok-alice2", RatePerSec: 100, Burst: 3, MaxInFlight: 10},
		Limits{Name: "carol", Token: "tok-carol"})
	if err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	alice2, ok := r.Lookup("tok-alice2")
	if !ok || alice2 != alice {
		t.Fatal("reload must keep the surviving tenant's identity (same *Tenant)")
	}
	if _, ok := r.Lookup("tok-alice"); ok {
		t.Fatal("rotated-out token still resolves")
	}
	if _, ok := r.Lookup("tok-bob"); ok {
		t.Fatal("removed tenant still resolves")
	}
	if alice.InFlight() != 7 {
		t.Fatalf("reload reset in-flight accounting: %d, want 7", alice.InFlight())
	}
	// The bucket clamps to the new, smaller burst immediately.
	now := time.Now()
	denied := 0
	for i := 0; i < 10; i++ {
		if ok, _ := alice.AllowRequest(now); !ok {
			denied++
		}
	}
	if denied != 7 {
		t.Fatalf("shrunk burst of 3 allowed %d of 10 instant requests", 10-denied)
	}
	// Jobs admitted under the old config still release cleanly.
	for i := 0; i < 7; i++ {
		alice.ReleaseSlot()
	}
	if alice.InFlight() != 0 {
		t.Fatalf("inflight=%d after releasing all, want 0", alice.InFlight())
	}
}

func TestReloadErrorKeepsPreviousState(t *testing.T) {
	dir := t.TempDir()
	path := writeTenants(t, dir, Limits{Name: "alice", Token: "tok-alice"})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload(); err == nil {
		t.Fatal("Reload accepted a corrupt file")
	}
	if _, ok := r.Lookup("tok-alice"); !ok {
		t.Fatal("failed reload dropped the previous tenant set")
	}
}

func TestDefaults(t *testing.T) {
	tn := newTenant(Limits{Name: "a", Token: "tok-a"})
	if tn.Weight() != 1 {
		t.Fatalf("default weight %d, want 1", tn.Weight())
	}
	if tn.MaxInFlight() != 0 || !tn.AcquireSlots(1000) {
		t.Fatal("zero MaxInFlight must mean unlimited")
	}
	if ok, _ := tn.AllowRequest(time.Now()); !ok {
		t.Fatal("zero RatePerSec must mean unlimited")
	}
	if tn.Admin() {
		t.Fatal("admin must default to false")
	}
}

// TestStreamSlots pins the concurrent-stream accounting AcquireStream/
// ReleaseStream meter for the SSE feeds: the tenant's own max_streams
// wins, the server default is only a fallback, zero-for-both means
// uncapped, and release never goes negative.
func TestStreamSlots(t *testing.T) {
	capped := newTenant(Limits{Name: "capped", Token: "tok-capped", MaxStreams: 2})
	for i := 0; i < 2; i++ {
		if !capped.AcquireStream(16) {
			t.Fatalf("acquire %d rejected under limit 2", i)
		}
	}
	if capped.AcquireStream(16) {
		t.Fatal("third stream acquired past max_streams=2 (fallback must not override the tenant limit)")
	}
	if capped.Streams() != 2 {
		t.Fatalf("Streams() = %d, want 2", capped.Streams())
	}
	capped.ReleaseStream()
	if !capped.AcquireStream(16) {
		t.Fatal("released slot not reusable")
	}

	// No tenant limit: the server default applies...
	def := newTenant(Limits{Name: "def", Token: "tok-def"})
	if !def.AcquireStream(1) || def.AcquireStream(1) {
		t.Fatal("fallback cap of 1 not enforced")
	}
	// ...and fallback <= 0 means uncapped.
	open := newTenant(Limits{Name: "open", Token: "tok-open"})
	for i := 0; i < 100; i++ {
		if !open.AcquireStream(0) {
			t.Fatalf("uncapped tenant rejected stream %d", i)
		}
	}

	// Release on an empty count stays at zero instead of going negative
	// (a double-release must not mint free slots).
	idle := newTenant(Limits{Name: "idle", Token: "tok-idle", MaxStreams: 1})
	idle.ReleaseStream()
	if idle.Streams() != 0 {
		t.Fatalf("Streams() = %d after spurious release, want 0", idle.Streams())
	}
	if !idle.AcquireStream(0) || idle.AcquireStream(0) {
		t.Fatal("spurious release widened the cap")
	}
}

// TestMaxStreamsConfig: the max_streams field round-trips through the
// file, and a negative value is a validation error like every other
// limit.
func TestMaxStreamsConfig(t *testing.T) {
	dir := t.TempDir()
	path := writeTenants(t, dir, Limits{Name: "alice", Token: "tok-alice", MaxStreams: 3})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tn, ok := r.Lookup("tok-alice")
	if !ok {
		t.Fatal("alice not resolved")
	}
	for i := 0; i < 3; i++ {
		if !tn.AcquireStream(1) {
			t.Fatalf("acquire %d rejected under configured max_streams=3", i)
		}
	}
	if tn.AcquireStream(1) {
		t.Fatal("configured max_streams=3 not enforced")
	}

	bad := writeTenants(t, t.TempDir(), Limits{Name: "bob", Token: "tok-bob", MaxStreams: -1})
	if _, err := Open(bad); err == nil {
		t.Fatal("negative max_streams accepted")
	}
}
