// Package trace records and replays packet-injection traces. The ML
// pipeline of the paper is trace-driven ("the feature data is collected
// from a modified network simulator running real network traffic",
// §IV.A); this package provides the equivalent capture layer so a
// workload's injection stream can be stored once and replayed bit-exactly
// into any network configuration.
//
// The binary format is little-endian: a 16-byte header (magic "PEARLTRC",
// u32 version, u32 record count) followed by fixed 40-byte records.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/noc"
	"repro/internal/sim"
)

// Magic identifies trace files.
const Magic = "PEARLTRC"

// Version is the current format version.
const Version = 1

// Record is one injection event.
type Record struct {
	ID          uint64     `json:"id"`
	Src         int32      `json:"src"`
	Dst         int32      `json:"dst"`
	Class       noc.Class  `json:"class"`
	Kind        noc.Kind   `json:"kind"`
	Source      noc.Source `json:"source"`
	SizeBits    int32      `json:"size_bits"`
	InjectCycle int64      `json:"inject_cycle"`
}

// FromPacket captures a packet's injection-time fields.
func FromPacket(p *noc.Packet) Record {
	return Record{
		ID: p.ID, Src: int32(p.Src), Dst: int32(p.Dst),
		Class: p.Class, Kind: p.Kind, Source: p.Source,
		SizeBits: int32(p.SizeBits), InjectCycle: p.InjectCycle,
	}
}

// Packet reconstructs an injectable packet.
func (r Record) Packet() *noc.Packet {
	return &noc.Packet{
		ID: r.ID, Src: int(r.Src), Dst: int(r.Dst),
		Class: r.Class, Kind: r.Kind, Source: r.Source,
		SizeBits: int(r.SizeBits), InjectCycle: r.InjectCycle,
	}
}

// WriteAll writes a complete trace (header + records) in one pass.
func WriteAll(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(Version)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(records))); err != nil {
		return err
	}
	for _, r := range records {
		if err := writeRecord(bw, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeRecord(w io.Writer, r Record) error {
	fields := []any{
		r.ID, r.Src, r.Dst, int32(r.Class), int32(r.Kind), int32(r.Source),
		r.SizeBits, r.InjectCycle,
	}
	for _, f := range fields {
		if err := binary.Write(w, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	return nil
}

// ReadAll parses a complete trace.
func ReadAll(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", noEOF(err))
	}
	if version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", version, Version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: reading record count: %w", noEOF(err))
	}
	// Cap the initial allocation: count comes from untrusted input, so a
	// corrupt header must not translate into a multi-GB make().
	capHint := count
	if capHint > 4096 {
		capHint = 4096
	}
	records := make([]Record, 0, capHint)
	for i := uint32(0); i < count; i++ {
		var rec Record
		if err := readRecord(br, &rec); err != nil {
			return nil, fmt.Errorf("trace: record %d of declared %d: %w", i, count, noEOF(err))
		}
		records = append(records, rec)
	}
	// A header that undercounts would silently drop records; refuse it.
	if _, err := br.Peek(1); err == nil {
		return nil, fmt.Errorf("trace: trailing bytes after the %d declared records", count)
	} else if err != io.EOF {
		return nil, fmt.Errorf("trace: checking for trailing bytes: %w", err)
	}
	return records, nil
}

// noEOF upgrades a bare io.EOF to io.ErrUnexpectedEOF: inside a
// structure whose header promised more bytes, running dry is a
// truncation, not a clean end of stream.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

func readRecord(r io.Reader, rec *Record) error {
	var class, kind, source int32
	fields := []any{
		&rec.ID, &rec.Src, &rec.Dst, &class, &kind, &source,
		&rec.SizeBits, &rec.InjectCycle,
	}
	for _, f := range fields {
		if err := binary.Read(r, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	rec.Class = noc.Class(class)
	rec.Kind = noc.Kind(kind)
	rec.Source = noc.Source(source)
	return nil
}

// WriteJSON exports a trace as a JSON array (for inspection/tooling).
func WriteJSON(w io.Writer, records []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(records)
}

// ReadJSON parses a JSON trace.
func ReadJSON(r io.Reader) ([]Record, error) {
	var records []Record
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return nil, err
	}
	return records, nil
}

// Recorder captures injections as they happen. Attach Wrap around a
// network target; every accepted packet is recorded.
type Recorder struct {
	records []Record
}

// Wrap returns a Target-compatible injector that records accepted
// packets into the recorder before forwarding to next. The record's
// InjectCycle is the acceptance time (the network stamps EnqueueCycle on
// success), not the demand-creation time, so traces stay sorted even
// when packets were retried after buffer-full rejections.
func (rec *Recorder) Wrap(next interface {
	Inject(p *noc.Packet) bool
}) InjectFunc {
	return func(p *noc.Packet) bool {
		if !next.Inject(p) {
			return false
		}
		r := FromPacket(p)
		r.InjectCycle = p.EnqueueCycle
		rec.records = append(rec.records, r)
		return true
	}
}

// InjectFunc adapts a function to the network-target shape.
type InjectFunc func(p *noc.Packet) bool

// Inject calls the function.
func (f InjectFunc) Inject(p *noc.Packet) bool { return f(p) }

// Records returns the captured trace.
func (rec *Recorder) Records() []Record { return rec.records }

// Len returns the captured record count.
func (rec *Recorder) Len() int { return len(rec.records) }

// Player replays a trace into a target network, injecting each record at
// its original cycle (retrying while the input buffer is full).
type Player struct {
	target interface {
		Inject(p *noc.Packet) bool
	}
	records []Record
	next    int
	pending []*noc.Packet

	// Injected counts successfully replayed packets.
	Injected uint64
}

// NewPlayer builds a replayer; records must be sorted by InjectCycle.
func NewPlayer(target interface {
	Inject(p *noc.Packet) bool
}, records []Record) (*Player, error) {
	for i := 1; i < len(records); i++ {
		if records[i].InjectCycle < records[i-1].InjectCycle {
			return nil, errors.New("trace: records not sorted by cycle")
		}
	}
	return &Player{target: target, records: records}, nil
}

// Tick injects every record due this cycle, plus retries from previous
// cycles.
func (p *Player) Tick(cycle int64) {
	// Retry stalled packets first to preserve order.
	keep := p.pending[:0]
	for _, pkt := range p.pending {
		if !p.target.Inject(pkt) {
			keep = append(keep, pkt)
			continue
		}
		p.Injected++
	}
	p.pending = keep
	for p.next < len(p.records) && p.records[p.next].InjectCycle <= cycle {
		pkt := p.records[p.next].Packet()
		p.next++
		if len(p.pending) > 0 || !p.target.Inject(pkt) {
			p.pending = append(p.pending, pkt)
			continue
		}
		p.Injected++
	}
}

// Done reports whether every record has been injected.
func (p *Player) Done() bool {
	return p.next >= len(p.records) && len(p.pending) == 0
}

var _ sim.Component = (*Player)(nil)
