package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/noc"
	"repro/internal/sim"
)

func sampleRecords() []Record {
	return []Record{
		{ID: 1, Src: 0, Dst: 16, Class: noc.ClassCPU, Kind: noc.KindRequest, Source: noc.SrcCPUL1D, SizeBits: 128, InjectCycle: 0},
		{ID: 2, Src: 16, Dst: 0, Class: noc.ClassCPU, Kind: noc.KindResponse, Source: noc.SrcL3, SizeBits: 640, InjectCycle: 30},
		{ID: 3, Src: 3, Dst: 7, Class: noc.ClassGPU, Kind: noc.KindRequest, Source: noc.SrcGPUL1, SizeBits: 128, InjectCycle: 30},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(got) != len(want) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(ids []uint16, seed uint64) bool {
		rng := sim.NewRNG(seed)
		recs := make([]Record, len(ids))
		cycle := int64(0)
		for i, id := range ids {
			cycle += int64(rng.Intn(10))
			recs[i] = Record{
				ID:  uint64(id),
				Src: int32(rng.Intn(17)), Dst: int32(rng.Intn(17)),
				Class:    noc.Class(rng.Intn(2)),
				Kind:     noc.Kind(rng.Intn(2)),
				Source:   noc.Source(rng.Intn(int(noc.NumSources))),
				SizeBits: int32(128 * (1 + rng.Intn(5))), InjectCycle: cycle,
			}
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, recs); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadAllRejectsBadMagic(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("NOTATRCE\x01\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadAll(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestReadAllRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write([]byte{9, 0, 0, 0, 0, 0, 0, 0})
	if _, err := ReadAll(&buf); err == nil {
		t.Fatal("expected version error")
	}
}

func TestReadAllTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadAll(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Fatal("expected error for truncated trace")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := noc.NewResponse(42, 16, 3, noc.ClassGPU, noc.SrcL3, 100)
	r := FromPacket(p)
	q := r.Packet()
	if q.ID != p.ID || q.Src != p.Src || q.Dst != p.Dst || q.Class != p.Class ||
		q.Kind != p.Kind || q.Source != p.Source || q.SizeBits != p.SizeBits ||
		q.InjectCycle != p.InjectCycle {
		t.Fatalf("roundtrip lost fields: %+v vs %+v", p, q)
	}
}

type fakeTarget struct {
	pkts   []*noc.Packet
	reject int // reject first N injections
}

func (f *fakeTarget) Inject(p *noc.Packet) bool {
	if f.reject > 0 {
		f.reject--
		return false
	}
	f.pkts = append(f.pkts, p)
	return true
}

func TestRecorderCapturesAccepted(t *testing.T) {
	target := &fakeTarget{reject: 1}
	rec := &Recorder{}
	wrapped := rec.Wrap(target)
	p1 := noc.NewRequest(1, 0, 1, noc.ClassCPU, noc.SrcCPUL1D, 0)
	p2 := noc.NewRequest(2, 0, 1, noc.ClassCPU, noc.SrcCPUL1D, 0)
	if wrapped.Inject(p1) {
		t.Fatal("first inject should be rejected")
	}
	if !wrapped.Inject(p2) {
		t.Fatal("second inject should pass")
	}
	if rec.Len() != 1 || rec.Records()[0].ID != 2 {
		t.Fatalf("recorder captured %v", rec.Records())
	}
}

func TestPlayerReplaysAtCycles(t *testing.T) {
	target := &fakeTarget{}
	player, err := NewPlayer(target, sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	player.Tick(0)
	if len(target.pkts) != 1 {
		t.Fatalf("cycle 0: %d packets", len(target.pkts))
	}
	player.Tick(15)
	if len(target.pkts) != 1 {
		t.Fatal("nothing due at cycle 15")
	}
	player.Tick(30)
	if len(target.pkts) != 3 {
		t.Fatalf("cycle 30: %d packets", len(target.pkts))
	}
	if !player.Done() {
		t.Fatal("player should be done")
	}
	if player.Injected != 3 {
		t.Fatalf("injected = %d", player.Injected)
	}
}

func TestPlayerRetriesOnBackpressure(t *testing.T) {
	target := &fakeTarget{reject: 2}
	player, _ := NewPlayer(target, sampleRecords())
	player.Tick(0) // rejected
	if player.Done() {
		t.Fatal("should not be done with pending packet")
	}
	player.Tick(1) // rejected again
	player.Tick(2) // succeeds
	if len(target.pkts) != 1 {
		t.Fatalf("packets = %d", len(target.pkts))
	}
	player.Tick(30)
	if !player.Done() || player.Injected != 3 {
		t.Fatalf("done=%v injected=%d", player.Done(), player.Injected)
	}
}

func TestPlayerPreservesOrderUnderStall(t *testing.T) {
	target := &fakeTarget{reject: 1}
	recs := []Record{
		{ID: 1, Src: 0, Dst: 1, SizeBits: 128, InjectCycle: 0},
		{ID: 2, Src: 0, Dst: 1, SizeBits: 128, InjectCycle: 0},
		{ID: 3, Src: 0, Dst: 1, SizeBits: 128, InjectCycle: 1},
	}
	player, _ := NewPlayer(target, recs)
	player.Tick(0)
	player.Tick(1)
	player.Tick(2)
	if len(target.pkts) != 3 {
		t.Fatalf("packets = %d", len(target.pkts))
	}
	for i, p := range target.pkts {
		if p.ID != uint64(i+1) {
			t.Fatalf("order violated: %v", target.pkts)
		}
	}
}

func TestNewPlayerRejectsUnsorted(t *testing.T) {
	recs := []Record{{InjectCycle: 10}, {InjectCycle: 5}}
	if _, err := NewPlayer(&fakeTarget{}, recs); err == nil {
		t.Fatal("expected error for unsorted records")
	}
}

// corruptTrace writes a valid trace then lets tests mangle the bytes.
func validTraceBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadAllTruncatedHeader(t *testing.T) {
	raw := validTraceBytes(t)
	// Every prefix shorter than the 16-byte header must fail with a
	// wrapped truncation error, never panic or return records.
	for cut := 0; cut < 16; cut++ {
		_, err := ReadAll(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("header truncated at %d bytes: no error", cut)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("header truncated at %d bytes: err %v lacks EOF cause", cut, err)
		}
	}
}

func TestReadAllBadMagic(t *testing.T) {
	raw := validTraceBytes(t)
	raw[0] = 'X'
	_, err := ReadAll(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bad magic: err = %v", err)
	}
}

func TestReadAllVersionMismatch(t *testing.T) {
	raw := validTraceBytes(t)
	binary.LittleEndian.PutUint32(raw[8:12], Version+7)
	_, err := ReadAll(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("version mismatch: err = %v", err)
	}
}

func TestReadAllCountExceedsFileLength(t *testing.T) {
	raw := validTraceBytes(t)
	// Header declares more records than the file holds.
	binary.LittleEndian.PutUint32(raw[12:16], uint32(len(sampleRecords())+5))
	_, err := ReadAll(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("over-count: no error")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("over-count: err = %v, want wrapped io.ErrUnexpectedEOF", err)
	}
}

func TestReadAllHugeCountDoesNotAllocate(t *testing.T) {
	raw := validTraceBytes(t)
	binary.LittleEndian.PutUint32(raw[12:16], 0xFFFFFFFF)
	_, err := ReadAll(bytes.NewReader(raw))
	if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("huge count: err = %v, want wrapped io.ErrUnexpectedEOF", err)
	}
}

func TestReadAllCountBelowFileLength(t *testing.T) {
	raw := validTraceBytes(t)
	// Header declares fewer records than the file holds: the silent-
	// short-read case. Must refuse, not drop the tail.
	binary.LittleEndian.PutUint32(raw[12:16], uint32(len(sampleRecords())-1))
	_, err := ReadAll(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "trailing bytes") {
		t.Fatalf("under-count: err = %v, want trailing-bytes error", err)
	}
}

func TestReadAllMidRecordTruncation(t *testing.T) {
	raw := validTraceBytes(t)
	// Cut inside the last record's payload.
	_, err := ReadAll(bytes.NewReader(raw[:len(raw)-7]))
	if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-record truncation: err = %v, want wrapped io.ErrUnexpectedEOF", err)
	}
}

func TestReadAllRoundTripStillCleanAfterHardening(t *testing.T) {
	got, err := ReadAll(bytes.NewReader(validTraceBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sampleRecords()) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(sampleRecords()))
	}
}

func TestReadAllEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace returned %d records", len(got))
	}
}
