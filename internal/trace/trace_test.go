package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/noc"
	"repro/internal/sim"
)

func sampleRecords() []Record {
	return []Record{
		{ID: 1, Src: 0, Dst: 16, Class: noc.ClassCPU, Kind: noc.KindRequest, Source: noc.SrcCPUL1D, SizeBits: 128, InjectCycle: 0},
		{ID: 2, Src: 16, Dst: 0, Class: noc.ClassCPU, Kind: noc.KindResponse, Source: noc.SrcL3, SizeBits: 640, InjectCycle: 30},
		{ID: 3, Src: 3, Dst: 7, Class: noc.ClassGPU, Kind: noc.KindRequest, Source: noc.SrcGPUL1, SizeBits: 128, InjectCycle: 30},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(got) != len(want) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(ids []uint16, seed uint64) bool {
		rng := sim.NewRNG(seed)
		recs := make([]Record, len(ids))
		cycle := int64(0)
		for i, id := range ids {
			cycle += int64(rng.Intn(10))
			recs[i] = Record{
				ID:  uint64(id),
				Src: int32(rng.Intn(17)), Dst: int32(rng.Intn(17)),
				Class:    noc.Class(rng.Intn(2)),
				Kind:     noc.Kind(rng.Intn(2)),
				Source:   noc.Source(rng.Intn(int(noc.NumSources))),
				SizeBits: int32(128 * (1 + rng.Intn(5))), InjectCycle: cycle,
			}
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, recs); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadAllRejectsBadMagic(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("NOTATRCE\x01\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadAll(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestReadAllRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write([]byte{9, 0, 0, 0, 0, 0, 0, 0})
	if _, err := ReadAll(&buf); err == nil {
		t.Fatal("expected version error")
	}
}

func TestReadAllTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadAll(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Fatal("expected error for truncated trace")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := noc.NewResponse(42, 16, 3, noc.ClassGPU, noc.SrcL3, 100)
	r := FromPacket(p)
	q := r.Packet()
	if q.ID != p.ID || q.Src != p.Src || q.Dst != p.Dst || q.Class != p.Class ||
		q.Kind != p.Kind || q.Source != p.Source || q.SizeBits != p.SizeBits ||
		q.InjectCycle != p.InjectCycle {
		t.Fatalf("roundtrip lost fields: %+v vs %+v", p, q)
	}
}

type fakeTarget struct {
	pkts   []*noc.Packet
	reject int // reject first N injections
}

func (f *fakeTarget) Inject(p *noc.Packet) bool {
	if f.reject > 0 {
		f.reject--
		return false
	}
	f.pkts = append(f.pkts, p)
	return true
}

func TestRecorderCapturesAccepted(t *testing.T) {
	target := &fakeTarget{reject: 1}
	rec := &Recorder{}
	wrapped := rec.Wrap(target)
	p1 := noc.NewRequest(1, 0, 1, noc.ClassCPU, noc.SrcCPUL1D, 0)
	p2 := noc.NewRequest(2, 0, 1, noc.ClassCPU, noc.SrcCPUL1D, 0)
	if wrapped.Inject(p1) {
		t.Fatal("first inject should be rejected")
	}
	if !wrapped.Inject(p2) {
		t.Fatal("second inject should pass")
	}
	if rec.Len() != 1 || rec.Records()[0].ID != 2 {
		t.Fatalf("recorder captured %v", rec.Records())
	}
}

func TestPlayerReplaysAtCycles(t *testing.T) {
	target := &fakeTarget{}
	player, err := NewPlayer(target, sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	player.Tick(0)
	if len(target.pkts) != 1 {
		t.Fatalf("cycle 0: %d packets", len(target.pkts))
	}
	player.Tick(15)
	if len(target.pkts) != 1 {
		t.Fatal("nothing due at cycle 15")
	}
	player.Tick(30)
	if len(target.pkts) != 3 {
		t.Fatalf("cycle 30: %d packets", len(target.pkts))
	}
	if !player.Done() {
		t.Fatal("player should be done")
	}
	if player.Injected != 3 {
		t.Fatalf("injected = %d", player.Injected)
	}
}

func TestPlayerRetriesOnBackpressure(t *testing.T) {
	target := &fakeTarget{reject: 2}
	player, _ := NewPlayer(target, sampleRecords())
	player.Tick(0) // rejected
	if player.Done() {
		t.Fatal("should not be done with pending packet")
	}
	player.Tick(1) // rejected again
	player.Tick(2) // succeeds
	if len(target.pkts) != 1 {
		t.Fatalf("packets = %d", len(target.pkts))
	}
	player.Tick(30)
	if !player.Done() || player.Injected != 3 {
		t.Fatalf("done=%v injected=%d", player.Done(), player.Injected)
	}
}

func TestPlayerPreservesOrderUnderStall(t *testing.T) {
	target := &fakeTarget{reject: 1}
	recs := []Record{
		{ID: 1, Src: 0, Dst: 1, SizeBits: 128, InjectCycle: 0},
		{ID: 2, Src: 0, Dst: 1, SizeBits: 128, InjectCycle: 0},
		{ID: 3, Src: 0, Dst: 1, SizeBits: 128, InjectCycle: 1},
	}
	player, _ := NewPlayer(target, recs)
	player.Tick(0)
	player.Tick(1)
	player.Tick(2)
	if len(target.pkts) != 3 {
		t.Fatalf("packets = %d", len(target.pkts))
	}
	for i, p := range target.pkts {
		if p.ID != uint64(i+1) {
			t.Fatalf("order violated: %v", target.pkts)
		}
	}
}

func TestNewPlayerRejectsUnsorted(t *testing.T) {
	recs := []Record{{InjectCycle: 10}, {InjectCycle: 5}}
	if _, err := NewPlayer(&fakeTarget{}, recs); err == nil {
		t.Fatal("expected error for unsorted records")
	}
}
