package traffic

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/noc"
)

// InjectionEvent is the minimal view of a trace record the estimator
// needs (the trace package's Record satisfies it via adaptation to avoid
// an import cycle).
type InjectionEvent struct {
	Cycle int64
	Class noc.Class
	Kind  noc.Kind
	Dst   int
}

// EstimateProfile fits a benchmark Profile to an observed injection
// stream for one traffic class — the calibration path from a real trace
// (e.g. captured from Multi2Sim, or recorded by internal/trace) to this
// repository's synthetic substrate. The two-state burst process is
// recovered by thresholding windowed rates at the midpoint between the
// low and high rate clusters:
//
//   - BaseRate / BurstRate: means of the below/above-threshold windows,
//   - BurstEntry / BurstExit: transition frequencies of the thresholded
//     window sequence, converted to per-cycle probabilities,
//   - L3Fraction, WriteFraction: direct event-share estimates.
//
// routers is the number of injecting routers (rates are per router per
// cycle); window is the aggregation granularity in cycles.
func EstimateProfile(name string, class noc.Class, events []InjectionEvent, routers int, window int64, l3Router int) (Profile, error) {
	if routers <= 0 || window <= 0 {
		return Profile{}, fmt.Errorf("traffic: invalid estimator geometry")
	}
	var filtered []InjectionEvent
	for _, e := range events {
		if e.Class == class {
			filtered = append(filtered, e)
		}
	}
	if len(filtered) < 10 {
		return Profile{}, fmt.Errorf("traffic: only %d events for class %v", len(filtered), class)
	}
	sort.Slice(filtered, func(i, j int) bool { return filtered[i].Cycle < filtered[j].Cycle })

	first := filtered[0].Cycle
	last := filtered[len(filtered)-1].Cycle
	nWindows := int((last-first)/window) + 1
	counts := make([]float64, nWindows)
	var toL3, writebacks float64
	for _, e := range filtered {
		counts[(e.Cycle-first)/window]++
		if e.Dst == l3Router {
			toL3++
		}
		if e.Kind == noc.KindResponse {
			writebacks++
		}
	}
	// Per-router per-cycle rates per window.
	rates := make([]float64, nWindows)
	denom := float64(routers) * float64(window)
	for i, c := range counts {
		rates[i] = c / denom
	}

	// Two-cluster split: threshold halfway between the min and max rate,
	// refined once by recomputing cluster means (1D 2-means, two
	// iterations suffice for bimodal data).
	lo, hi := minMax(rates)
	if hi == lo {
		return Profile{}, fmt.Errorf("traffic: rate sequence is constant; no burst structure to fit")
	}
	threshold := (lo + hi) / 2
	for iter := 0; iter < 2; iter++ {
		loMean, hiMean, _, _ := split(rates, threshold)
		threshold = (loMean + hiMean) / 2
	}
	baseRate, burstRate, nLo, nHi := split(rates, threshold)
	if nLo == 0 || nHi == 0 {
		return Profile{}, fmt.Errorf("traffic: burst split degenerate (%d low / %d high windows)", nLo, nHi)
	}

	// Transition frequencies of the thresholded sequence.
	var entries, exits, loWindows, hiWindows float64
	prevHigh := rates[0] > threshold
	for _, r := range rates {
		high := r > threshold
		if high {
			hiWindows++
		} else {
			loWindows++
		}
		if high && !prevHigh {
			entries++
		}
		if !high && prevHigh {
			exits++
		}
		prevHigh = high
	}
	// Convert per-window transition odds to per-cycle probabilities:
	// P(cycle) = 1 - (1 - P(window))^(1/window).
	perCycle := func(transitions, windows float64) float64 {
		if windows == 0 {
			return 0
		}
		pWindow := transitions / windows
		if pWindow >= 1 {
			pWindow = 0.99
		}
		return 1 - math.Pow(1-pWindow, 1/float64(window))
	}
	entry := perCycle(entries, loWindows)
	exit := perCycle(exits, hiWindows)
	if exit <= 0 {
		exit = 1 / float64(window*int64(nWindows))
	}

	p := Profile{
		Name:           name,
		Class:          class,
		BaseRate:       baseRate,
		BurstRate:      math.Max(burstRate, baseRate),
		BurstEntry:     entry,
		BurstExit:      exit,
		RampCycles:     int(window / 2),
		L3Fraction:     toL3 / float64(len(filtered)),
		MemFraction:    0.3, // not observable from injections alone
		WriteFraction:  writebacks / float64(len(filtered)),
		MaxOutstanding: 4,
		MaxPending:     64,
	}
	if class == noc.ClassGPU {
		p.MaxOutstanding = 320
		p.MaxPending = 2048
		p.RampCycles = int(window)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, fmt.Errorf("traffic: estimated profile invalid: %w", err)
	}
	return p, nil
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// split returns the means and counts of values below/above the threshold.
func split(xs []float64, threshold float64) (loMean, hiMean float64, nLo, nHi int) {
	var loSum, hiSum float64
	for _, x := range xs {
		if x > threshold {
			hiSum += x
			nHi++
		} else {
			loSum += x
			nLo++
		}
	}
	if nLo > 0 {
		loMean = loSum / float64(nLo)
	}
	if nHi > 0 {
		hiMean = hiSum / float64(nHi)
	}
	return loMean, hiMean, nLo, nHi
}
