package traffic

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/sim"
)

// synthEvents generates an injection stream from a known two-state
// process so the estimator's recovery can be checked against ground
// truth.
func synthEvents(rng *sim.RNG, base, burst, entry, exit float64, cycles int64, routers int) []InjectionEvent {
	var events []InjectionEvent
	bursting := false
	for c := int64(0); c < cycles; c++ {
		if bursting {
			if rng.Bernoulli(exit) {
				bursting = false
			}
		} else if rng.Bernoulli(entry) {
			bursting = true
		}
		rate := base
		if bursting {
			rate = burst
		}
		for r := 0; r < routers; r++ {
			n := rng.Poisson(rate)
			for i := 0; i < n; i++ {
				dst := config.L3RouterID
				if rng.Bernoulli(0.2) {
					dst = rng.Intn(config.NumClusterRouters)
				}
				kind := noc.KindRequest
				if rng.Bernoulli(0.15) {
					kind = noc.KindResponse
				}
				events = append(events, InjectionEvent{
					Cycle: c, Class: noc.ClassGPU, Kind: kind, Dst: dst,
				})
			}
		}
	}
	return events
}

func TestEstimateProfileRecoversRates(t *testing.T) {
	rng := sim.NewRNG(77)
	const base, burst = 0.01, 0.3
	events := synthEvents(rng, base, burst, 0.0005, 0.002, 120000, 16)
	p, err := EstimateProfile("synth", noc.ClassGPU, events, 16, 500, config.L3RouterID)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.BaseRate-base) > 0.02 {
		t.Errorf("base rate %v, want ~%v", p.BaseRate, base)
	}
	if math.Abs(p.BurstRate-burst) > 0.1 {
		t.Errorf("burst rate %v, want ~%v", p.BurstRate, burst)
	}
	// Duty cycle within a factor of ~2 of ground truth (0.0005/0.0025 = 0.2).
	gotDuty := p.BurstEntry / (p.BurstEntry + p.BurstExit)
	if gotDuty < 0.08 || gotDuty > 0.45 {
		t.Errorf("duty %v, want ~0.2", gotDuty)
	}
	// L3 fraction ~0.8, writeback fraction ~0.15.
	if math.Abs(p.L3Fraction-0.8) > 0.05 {
		t.Errorf("L3 fraction %v", p.L3Fraction)
	}
	if math.Abs(p.WriteFraction-0.15) > 0.05 {
		t.Errorf("write fraction %v", p.WriteFraction)
	}
	if p.Class != noc.ClassGPU || p.MaxOutstanding != 320 {
		t.Errorf("GPU defaults not applied: %+v", p)
	}
}

func TestEstimateProfileValidatesInput(t *testing.T) {
	if _, err := EstimateProfile("x", noc.ClassCPU, nil, 16, 500, 16); err == nil {
		t.Fatal("empty events accepted")
	}
	if _, err := EstimateProfile("x", noc.ClassCPU, nil, 0, 500, 16); err == nil {
		t.Fatal("zero routers accepted")
	}
	if _, err := EstimateProfile("x", noc.ClassCPU, nil, 16, 0, 16); err == nil {
		t.Fatal("zero window accepted")
	}
	// Constant-rate stream has no burst structure.
	var flat []InjectionEvent
	for c := int64(0); c < 50000; c += 100 {
		flat = append(flat, InjectionEvent{Cycle: c, Class: noc.ClassCPU, Kind: noc.KindRequest, Dst: 16})
	}
	if _, err := EstimateProfile("x", noc.ClassCPU, flat, 16, 500, 16); err == nil {
		t.Fatal("constant stream should not fit a burst process")
	}
}

func TestEstimateProfileFiltersClass(t *testing.T) {
	rng := sim.NewRNG(5)
	events := synthEvents(rng, 0.01, 0.2, 0.001, 0.003, 40000, 16)
	// All events are GPU; asking for CPU must fail on sample count.
	if _, err := EstimateProfile("x", noc.ClassCPU, events, 16, 500, config.L3RouterID); err == nil {
		t.Fatal("wrong-class estimation should fail")
	}
}

func TestEstimatedProfileDrivesWorkload(t *testing.T) {
	// Closing the loop: an estimated profile must be usable as a real
	// workload generator.
	rng := sim.NewRNG(9)
	events := synthEvents(rng, 0.005, 0.25, 0.0004, 0.002, 80000, 16)
	gpuProfile, err := EstimateProfile("estimated", noc.ClassGPU, events, 16, 500, config.L3RouterID)
	if err != nil {
		t.Fatal(err)
	}
	pair := Pair{CPU: CPUProfiles()[0], GPU: gpuProfile}
	engine := sim.NewEngine()
	sink := &sinkTarget{}
	w, err := NewWorkload(engine, sink, pair, 3)
	if err != nil {
		t.Fatal(err)
	}
	w.StartMeasurement()
	engine.Register(w)
	engine.Run(20000)
	if w.Injected.Packets[1] == 0 {
		t.Fatal("estimated profile generated no GPU traffic")
	}
}
