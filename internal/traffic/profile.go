// Package traffic is the heterogeneous workload substrate standing in for
// the paper's Multi2Sim full-system traces. Each of the 24 named
// benchmarks (12 CPU from PARSEC 2.1 / SPLASH2, 12 GPU from the OpenCL
// SDK) becomes a parameterised stochastic generator reproducing the
// network-level behaviour the paper exploits: steady, latency-sensitive
// CPU traffic; bursty, bandwidth-hungry GPU traffic; request/response
// coherence flows through the shared L3.
//
// Generators are closed-loop: cores have a bounded number of outstanding
// requests, so round-trip latency feeds back into achievable injection
// rate — the mechanism behind the paper's throughput differences between
// PEARL-Dyn, PEARL-FCFS, the power-scaled variants and CMESH.
package traffic

import (
	"fmt"

	"repro/internal/noc"
)

// Profile describes one benchmark's traffic statistically. Rates are
// per-router demands per network cycle for the benchmark's core type.
type Profile struct {
	// Name is the benchmark name (Table IV abbreviations included).
	Name string
	// Class is the core type running the benchmark.
	Class noc.Class

	// BaseRate is the demand rate in the steady (OFF-burst) phase,
	// memory requests per router per cycle.
	BaseRate float64
	// BurstRate is the demand rate inside a burst.
	BurstRate float64
	// BurstEntry is the per-cycle probability of entering a burst.
	BurstEntry float64
	// BurstExit is the per-cycle probability of leaving a burst
	// (expected burst length = 1/BurstExit cycles).
	BurstExit float64
	// RampCycles is how long a starting burst takes to reach full
	// intensity (wavefront launch / warp scheduling ramp on GPUs, loop
	// warm-up on CPUs). Zero means instantaneous bursts. The ramp is
	// what makes next-window demand learnable: a kernel announces itself
	// through partial activity before peaking.
	RampCycles int

	// L3Fraction routes this share of requests to the shared L3 router;
	// the rest go to a peer cluster (remote L2 sharing).
	L3Fraction float64
	// MemFraction of L3 requests miss to main memory and see the longer
	// service latency.
	MemFraction float64
	// WriteFraction of requests are writeback-style and need no
	// response.
	WriteFraction float64

	// MaxOutstanding bounds in-flight requests per router for this class
	// (MSHR budget; CPUs small, GPUs large).
	MaxOutstanding int
	// MaxPending bounds queued-but-not-issued demands; past it the core
	// stalls and demand is shed.
	MaxPending int
}

// Validate reports the first problem with the profile.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("traffic: profile with empty name")
	case p.BaseRate < 0 || p.BurstRate < p.BaseRate:
		return fmt.Errorf("traffic: %s has invalid rates base=%v burst=%v", p.Name, p.BaseRate, p.BurstRate)
	case p.BurstEntry < 0 || p.BurstEntry > 1 || p.BurstExit <= 0 || p.BurstExit > 1:
		return fmt.Errorf("traffic: %s has invalid burst probabilities", p.Name)
	case p.L3Fraction < 0 || p.L3Fraction > 1:
		return fmt.Errorf("traffic: %s has invalid L3 fraction %v", p.Name, p.L3Fraction)
	case p.MemFraction < 0 || p.MemFraction > 1:
		return fmt.Errorf("traffic: %s has invalid memory fraction %v", p.Name, p.MemFraction)
	case p.WriteFraction < 0 || p.WriteFraction > 1:
		return fmt.Errorf("traffic: %s has invalid write fraction %v", p.Name, p.WriteFraction)
	case p.MaxOutstanding <= 0:
		return fmt.Errorf("traffic: %s has non-positive MSHR budget", p.Name)
	case p.MaxPending <= 0:
		return fmt.Errorf("traffic: %s has non-positive pending budget", p.Name)
	case p.RampCycles < 0:
		return fmt.Errorf("traffic: %s has negative ramp", p.Name)
	}
	return nil
}

// MeanRate returns the long-run demand rate implied by the burst process.
func (p Profile) MeanRate() float64 {
	if p.BurstEntry == 0 {
		return p.BaseRate
	}
	// Stationary burst probability of the 2-state chain.
	pOn := p.BurstEntry / (p.BurstEntry + p.BurstExit)
	return pOn*p.BurstRate + (1-pOn)*p.BaseRate
}

// cpuProfile fills the CPU-side defaults: a small MSHR budget (a few
// outstanding misses across the cluster's 2 cores) that makes CPU throughput
// latency-sensitive, and mild phase behaviour.
func cpuProfile(name string, base, burst, entry, exit, l3, mem float64) Profile {
	return Profile{
		Name: name, Class: noc.ClassCPU,
		BaseRate: base, BurstRate: burst, BurstEntry: entry, BurstExit: exit,
		RampCycles: 150,
		L3Fraction: l3, MemFraction: mem, WriteFraction: 0.15,
		MaxOutstanding: 4, MaxPending: 64,
	}
}

// gpuProfile fills the GPU-side defaults: deep MSHR budget (4 CUs x many
// wavefronts) and strong on/off burstiness, the "bursty nature of traffic
// which is typical of GPU traffic" (§IV.A).
func gpuProfile(name string, base, burst, entry, exit, l3, mem float64) Profile {
	return Profile{
		Name: name, Class: noc.ClassGPU,
		BaseRate: base, BurstRate: burst, BurstEntry: entry, BurstExit: exit,
		RampCycles: 250,
		L3Fraction: l3, MemFraction: mem, WriteFraction: 0.18,
		MaxOutstanding: 320, MaxPending: 2048,
	}
}

// CPUProfiles returns the 12 CPU benchmarks (PARSEC 2.1 + SPLASH2 mix,
// §IV.A). The last four are the Table IV test benchmarks.
func CPUProfiles() []Profile {
	return []Profile{
		// Training set (6).
		cpuProfile("blackscholes", 0.0036, 0.0690, 0.0018, 0.0040, 0.75, 0.20),
		cpuProfile("bodytrack", 0.0054, 0.1035, 0.0023, 0.0040, 0.70, 0.25),
		cpuProfile("canneal", 0.0072, 0.1150, 0.0030, 0.0032, 0.80, 0.45),
		cpuProfile("dedup", 0.0054, 0.0920, 0.0023, 0.0048, 0.65, 0.30),
		cpuProfile("ferret", 0.0045, 0.0966, 0.0018, 0.0040, 0.70, 0.25),
		cpuProfile("freqmine", 0.0040, 0.0690, 0.0015, 0.0032, 0.75, 0.20),
		// Validation set (2).
		cpuProfile("streamcluster", 0.0067, 0.1265, 0.0027, 0.0032, 0.80, 0.35),
		cpuProfile("swaptions", 0.0027, 0.0460, 0.0015, 0.0048, 0.70, 0.15),
		// Test set (4) - Table IV: FA, fmm, Rad, x264.
		cpuProfile("fluidanimate", 0.0058, 0.1104, 0.0023, 0.0040, 0.75, 0.30),
		cpuProfile("fmm", 0.0050, 0.1012, 0.0018, 0.0032, 0.70, 0.25),
		cpuProfile("radiosity", 0.0063, 0.1150, 0.0024, 0.0040, 0.75, 0.30),
		cpuProfile("x264", 0.0045, 0.1380, 0.0033, 0.0064, 0.65, 0.25),
	}
}

// GPUProfiles returns the 12 GPU benchmarks (OpenCL SDK, §IV.A). The last
// four are the Table IV test benchmarks.
func GPUProfiles() []Profile {
	return []Profile{
		// Training set (6). Kernel launches appear as kilocycle-scale
		// bursts (mean 1/exit cycles) separated by long idle phases.
		gpuProfile("MatrixMultiply", 0.002, 0.402, 0.00019, 0.0020, 0.85, 0.40),
		gpuProfile("FloydWarshall", 0.003, 0.333, 0.00023, 0.0024, 0.85, 0.35),
		gpuProfile("FastWalsh", 0.002, 0.460, 0.00016, 0.0018, 0.90, 0.45),
		gpuProfile("Histogram", 0.004, 0.299, 0.00029, 0.0028, 0.80, 0.30),
		gpuProfile("PrefixSum", 0.002, 0.253, 0.00022, 0.0024, 0.85, 0.30),
		gpuProfile("BinomialOption", 0.001, 0.368, 0.00017, 0.0020, 0.85, 0.35),
		// Validation set (2).
		gpuProfile("BitonicSort", 0.003, 0.345, 0.00023, 0.0022, 0.85, 0.35),
		gpuProfile("MonteCarloAsian", 0.002, 0.276, 0.00020, 0.0024, 0.80, 0.30),
		// Test set (4) - Table IV: DCT, Dwrt, QRS, Reduc.
		gpuProfile("DCT", 0.002, 0.425, 0.00021, 0.0020, 0.88, 0.40),
		gpuProfile("DwtHaar1D", 0.002, 0.310, 0.00020, 0.0024, 0.85, 0.35),
		gpuProfile("QuasiRandom", 0.001, 0.218, 0.00016, 0.0028, 0.80, 0.25),
		gpuProfile("Reduction", 0.003, 0.391, 0.00025, 0.0022, 0.88, 0.40),
	}
}

// ProfileByName looks up a benchmark in either suite.
func ProfileByName(name string) (Profile, error) {
	for _, p := range CPUProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	for _, p := range GPUProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("traffic: unknown benchmark %q", name)
}

// Pair is one CPU benchmark running simultaneously with one GPU benchmark
// — "each traffic file consists of one CPU benchmark ran simultaneously
// with one GPU benchmark" (§IV.A).
type Pair struct {
	CPU, GPU Profile
}

// Name returns the pair's display label, e.g. "FA+DCT".
func (p Pair) Name() string { return p.CPU.Name + "+" + p.GPU.Name }

func crossPairs(cpus, gpus []Profile) []Pair {
	pairs := make([]Pair, 0, len(cpus)*len(gpus))
	for _, c := range cpus {
		for _, g := range gpus {
			pairs = append(pairs, Pair{CPU: c, GPU: g})
		}
	}
	return pairs
}

// TrainingPairs crosses the 6 training CPU and 6 training GPU benchmarks
// into the paper's 36 training pairs.
func TrainingPairs() []Pair {
	return crossPairs(CPUProfiles()[:6], GPUProfiles()[:6])
}

// ValidationPairs crosses the 2+2 validation benchmarks into 4 pairs used
// to tune the ridge regularisation coefficient.
func ValidationPairs() []Pair {
	return crossPairs(CPUProfiles()[6:8], GPUProfiles()[6:8])
}

// TestPairs crosses the 4+4 Table IV test benchmarks into the 16 pairs all
// figures are reported on.
func TestPairs() []Pair {
	return crossPairs(CPUProfiles()[8:12], GPUProfiles()[8:12])
}
