package traffic

import (
	"testing"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/sim"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range append(CPUProfiles(), GPUProfiles()...) {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestSuiteSizes(t *testing.T) {
	if len(CPUProfiles()) != 12 || len(GPUProfiles()) != 12 {
		t.Fatalf("suites = %d CPU, %d GPU; want 12 each (§IV.A)",
			len(CPUProfiles()), len(GPUProfiles()))
	}
	if len(TrainingPairs()) != 36 {
		t.Errorf("training pairs = %d, want 36", len(TrainingPairs()))
	}
	if len(ValidationPairs()) != 4 {
		t.Errorf("validation pairs = %d, want 4", len(ValidationPairs()))
	}
	if len(TestPairs()) != 16 {
		t.Errorf("test pairs = %d, want 16", len(TestPairs()))
	}
}

func TestSplitsAreDisjoint(t *testing.T) {
	seen := map[string]string{}
	record := func(split string, names ...string) {
		for _, n := range names {
			if prev, ok := seen[n]; ok && prev != split {
				t.Errorf("benchmark %s appears in both %s and %s", n, prev, split)
			}
			seen[n] = split
		}
	}
	for _, p := range TrainingPairs() {
		record("train", p.CPU.Name, p.GPU.Name)
	}
	for _, p := range ValidationPairs() {
		record("val", p.CPU.Name, p.GPU.Name)
	}
	for _, p := range TestPairs() {
		record("test", p.CPU.Name, p.GPU.Name)
	}
}

func TestTableIVTestBenchmarks(t *testing.T) {
	// Table IV names the ML test benchmarks: FA, fmm, Rad, x264 (CPU) and
	// DCT, Dwrt, QRS, Reduc (GPU).
	wantCPU := map[string]bool{"fluidanimate": true, "fmm": true, "radiosity": true, "x264": true}
	wantGPU := map[string]bool{"DCT": true, "DwtHaar1D": true, "QuasiRandom": true, "Reduction": true}
	for _, p := range CPUProfiles()[8:12] {
		if !wantCPU[p.Name] {
			t.Errorf("unexpected CPU test benchmark %s", p.Name)
		}
	}
	for _, p := range GPUProfiles()[8:12] {
		if !wantGPU[p.Name] {
			t.Errorf("unexpected GPU test benchmark %s", p.Name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("fmm")
	if err != nil || p.Class != noc.ClassCPU {
		t.Fatalf("fmm lookup: %v %v", p, err)
	}
	g, err := ProfileByName("DCT")
	if err != nil || g.Class != noc.ClassGPU {
		t.Fatalf("DCT lookup: %v %v", g, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestGPUProfilesAreBurstier(t *testing.T) {
	// §IV.A observes the bursty nature typical of GPU traffic: every GPU
	// profile's burst:base ratio must dwarf every CPU profile's.
	maxCPU := 0.0
	for _, p := range CPUProfiles() {
		if r := p.BurstRate / p.BaseRate; r > maxCPU {
			maxCPU = r
		}
	}
	for _, p := range GPUProfiles() {
		if r := p.BurstRate / p.BaseRate; r <= maxCPU {
			t.Errorf("%s burst ratio %.1f not above CPU max %.1f", p.Name, r, maxCPU)
		}
	}
}

func TestMeanRate(t *testing.T) {
	p := Profile{BaseRate: 0.01, BurstRate: 0.11, BurstEntry: 0.01, BurstExit: 0.01}
	// Stationary on-probability 0.5 -> mean 0.06.
	if got := p.MeanRate(); got < 0.059 || got > 0.061 {
		t.Fatalf("mean rate = %v, want 0.06", got)
	}
	flat := Profile{BaseRate: 0.02, BurstRate: 0.05, BurstEntry: 0, BurstExit: 0.5}
	if flat.MeanRate() != 0.02 {
		t.Fatalf("no-burst mean = %v", flat.MeanRate())
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	good := CPUProfiles()[0]
	muts := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.BurstRate = p.BaseRate / 2 },
		func(p *Profile) { p.BurstEntry = 1.5 },
		func(p *Profile) { p.BurstExit = 0 },
		func(p *Profile) { p.L3Fraction = -0.1 },
		func(p *Profile) { p.MemFraction = 2 },
		func(p *Profile) { p.WriteFraction = -1 },
		func(p *Profile) { p.MaxOutstanding = 0 },
		func(p *Profile) { p.MaxPending = 0 },
	}
	for i, mut := range muts {
		p := good
		mut(&p)
		if p.Validate() == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

// sinkTarget accepts every packet and records it.
type sinkTarget struct {
	packets []*noc.Packet
	reject  bool
}

func (s *sinkTarget) Inject(p *noc.Packet) bool {
	if s.reject {
		return false
	}
	s.packets = append(s.packets, p)
	return true
}

func testPair() Pair {
	return Pair{CPU: CPUProfiles()[8], GPU: GPUProfiles()[8]}
}

func TestWorkloadGeneratesBothClasses(t *testing.T) {
	engine := sim.NewEngine()
	sink := &sinkTarget{}
	w, err := NewWorkload(engine, sink, testPair(), 1)
	if err != nil {
		t.Fatal(err)
	}
	w.StartMeasurement()
	engine.Register(w)
	engine.Run(20000)
	var cpu, gpu int
	for _, p := range sink.packets {
		if p.Src < 0 || p.Src >= config.NumClusterRouters {
			t.Fatalf("bad source router %d", p.Src)
		}
		if p.Dst == p.Src {
			t.Fatalf("self-addressed packet %v", p)
		}
		if p.Dst < 0 || p.Dst > config.L3RouterID {
			t.Fatalf("bad destination %d", p.Dst)
		}
		if p.Class == noc.ClassCPU {
			cpu++
		} else {
			gpu++
		}
	}
	if cpu == 0 || gpu == 0 {
		t.Fatalf("cpu=%d gpu=%d packets; both classes must flow", cpu, gpu)
	}
	if w.Injected.TotalPackets() == 0 {
		t.Fatal("measurement counted nothing")
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	run := func() uint64 {
		engine := sim.NewEngine()
		sink := &sinkTarget{}
		w, _ := NewWorkload(engine, sink, testPair(), 42)
		w.StartMeasurement()
		engine.Register(w)
		engine.Run(5000)
		return w.Injected.TotalPackets()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced %d vs %d packets", a, b)
	}
}

func TestWorkloadSeedsDiffer(t *testing.T) {
	run := func(seed uint64) uint64 {
		engine := sim.NewEngine()
		sink := &sinkTarget{}
		w, _ := NewWorkload(engine, sink, testPair(), seed)
		w.StartMeasurement()
		engine.Register(w)
		engine.Run(5000)
		return w.Injected.TotalPackets()
	}
	if a, b := run(1), run(2); a == b {
		t.Log("different seeds produced identical counts (possible but unlikely)")
	}
}

func TestMSHRBoundsOutstanding(t *testing.T) {
	engine := sim.NewEngine()
	sink := &sinkTarget{}
	w, _ := NewWorkload(engine, sink, testPair(), 3)
	engine.Register(w)
	// With no responses ever delivered, outstanding must saturate at the
	// MSHR budget: 16 routers x (16 CPU + 96 GPU).
	engine.Run(50000)
	limit := config.NumClusterRouters * (testPair().CPU.MaxOutstanding + testPair().GPU.MaxOutstanding)
	if w.Outstanding() > limit {
		t.Fatalf("outstanding %d exceeds MSHR budget %d", w.Outstanding(), limit)
	}
	if w.Outstanding() != limit {
		t.Logf("outstanding %d below saturation %d (burst phases may idle)", w.Outstanding(), limit)
	}
}

func TestResponsesRetireRequests(t *testing.T) {
	engine := sim.NewEngine()
	sink := &sinkTarget{}
	w, _ := NewWorkload(engine, sink, testPair(), 7)
	w.StartMeasurement()
	engine.Register(w)
	// Deliver every injected packet instantly by feeding it back.
	engine.Register(sim.ComponentFunc(func(cycle int64) {
		for _, p := range sink.packets {
			p.ArriveCycle = cycle
			w.OnDeliver(p, cycle)
		}
		sink.packets = sink.packets[:0]
	}))
	engine.Run(10000)
	if w.Retired == 0 {
		t.Fatal("no requests retired despite instant delivery")
	}
	// With instant delivery the MSHR window cannot stay saturated.
	if w.Outstanding() > config.NumClusterRouters*(16+96)/2 {
		t.Fatalf("outstanding %d too high for instant delivery", w.Outstanding())
	}
}

func TestResponsesCarryRequesterClass(t *testing.T) {
	engine := sim.NewEngine()
	sink := &sinkTarget{}
	w, _ := NewWorkload(engine, sink, testPair(), 9)
	engine.Register(w)
	engine.Register(sim.ComponentFunc(func(cycle int64) {
		for _, p := range sink.packets {
			w.OnDeliver(p, cycle)
			if p.Kind == noc.KindResponse && p.Reply {
				if p.Src == p.Dst {
					t.Errorf("self-addressed response %v", p)
				}
			}
		}
		sink.packets = sink.packets[:0]
	}))
	engine.Run(2000)
}

func TestBackpressureStopsInjection(t *testing.T) {
	engine := sim.NewEngine()
	sink := &sinkTarget{reject: true}
	w, _ := NewWorkload(engine, sink, testPair(), 11)
	w.StartMeasurement()
	engine.Register(w)
	engine.Run(5000)
	if w.Injected.TotalPackets() != 0 {
		t.Fatal("rejecting target should accept nothing")
	}
	if w.Pending() == 0 {
		t.Fatal("pending demand should accumulate under backpressure")
	}
	// Pending must respect the shedding bound.
	maxPending := config.NumClusterRouters * (testPair().CPU.MaxPending + testPair().GPU.MaxPending)
	if w.Pending() > maxPending {
		t.Fatalf("pending %d exceeds bound %d", w.Pending(), maxPending)
	}
	if w.Shed == 0 {
		t.Fatal("expected shed demand under total backpressure")
	}
}

func TestNewWorkloadRejectsMismatchedPair(t *testing.T) {
	engine := sim.NewEngine()
	bad := Pair{CPU: GPUProfiles()[0], GPU: GPUProfiles()[1]}
	if _, err := NewWorkload(engine, &sinkTarget{}, bad, 1); err == nil {
		t.Fatal("expected error for GPU profile in CPU slot")
	}
	invalid := testPair()
	invalid.CPU.MaxOutstanding = 0
	if _, err := NewWorkload(engine, &sinkTarget{}, invalid, 1); err == nil {
		t.Fatal("expected error for invalid profile")
	}
}

func TestPairNames(t *testing.T) {
	p := testPair()
	if p.Name() != "fluidanimate+DCT" {
		t.Fatalf("pair name = %q", p.Name())
	}
}

func TestWritebacksDoNotRetire(t *testing.T) {
	engine := sim.NewEngine()
	sink := &sinkTarget{}
	w, _ := NewWorkload(engine, sink, testPair(), 13)
	engine.Register(w)
	engine.Run(3000)
	before := w.Retired
	for _, p := range sink.packets {
		if p.Kind == noc.KindResponse && !p.Reply {
			w.OnDeliver(p, 3000)
		}
	}
	if w.Retired != before {
		t.Fatal("writeback delivery must not retire MSHR credits")
	}
}
