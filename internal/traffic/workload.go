package traffic

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Service latencies in network cycles for the memory-side components that
// answer requests.
const (
	// L3HitCycles is the shared L3 lookup latency.
	L3HitCycles = 24
	// MemExtraCycles is the additional main-memory latency on an L3 miss.
	MemExtraCycles = 120
	// RemoteL2Cycles is a peer cluster's L2 snoop/service latency.
	RemoteL2Cycles = 12
)

// Target is the network under test: it accepts packets at their source
// router. Inject returns false when the router's input buffer cannot take
// the packet this cycle; the workload retries.
type Target interface {
	Inject(p *noc.Packet) bool
}

// generator drives one traffic class at one cluster router: a two-state
// Markov-modulated Poisson demand process in front of a bounded MSHR
// window.
type generator struct {
	router  int
	profile Profile
	// rng is embedded by value: the 32 generators of a workload live in
	// one contiguous array (see Workload.gens), so a replica's whole
	// traffic state walks the cache linearly instead of chasing per-
	// generator pointers.
	rng sim.RNG

	bursting    bool
	level       float64 // burst intensity in [0,1], ramping up/down
	pending     int     // demands waiting for an MSHR slot
	outstanding int     // requests in flight awaiting responses
	shed        uint64
	// demand stages this cycle's tickDemand result when the demand
	// phase runs on a tick pool; the sequential admit pass consumes it.
	demand int

	// expFor/expNegRate cache exp(-rate) for the Poisson sampler. The rate
	// only changes while a burst ramps, so in steady state the exponential
	// (one of the costliest calls in the cycle loop) is computed once, not
	// every cycle. expFor starts as NaN so the first cycle always fills
	// the cache.
	expFor     float64
	expNegRate float64
	// expTab is a direct-mapped cache of exp(-rate) behind the
	// single-entry cache above: a ramping burst walks the same ladder of
	// float rate values on every burst (each value recurs dozens of times
	// per million cycles), so most rate changes hit the table instead of
	// math.Exp. The slice aliases a table shared by every generator of
	// the workload (and, in replicated runs, by co-scheduled replicas of
	// the same pair): the memo is value-transparent — a slot is only
	// consumed when its stored rate matches exactly — so sharing changes
	// which lookups miss, never what any lookup returns.
	expTab []expEntry
	// rampStep and rateSpan precompute 1/RampCycles and
	// BurstRate-BaseRate; both are bit-identical to computing them inline
	// every cycle, just cheaper.
	rampStep float64
	rateSpan float64
}

// expEntry is one slot of the direct-mapped exp(-rate) cache. The zero
// value is safe: a stored rate of 0 can never be read back wrongly because
// PoissonExp returns before consuming exp(-mean) when mean <= 0.
type expEntry struct {
	rate float64
	exp  float64
}

// expTabBits sizes the shared exp cache (2^11 = 2048 slots, 32 KiB).
const expTabBits = 11

// ExpTable is a shareable exp(-rate) memo. One table serves all 32
// generators of a workload (the burst-rate ladders of a pair's two
// profiles fit 2048 slots with room to spare), replacing the former
// per-generator tables — 32 KiB per workload instead of 1 MiB. A
// lockstep replica set goes further and hands the same table to every
// replica a worker lane steps (same goroutine, so unsynchronised
// access is safe): the first replica warms the ladder, the rest hit.
// Sharing is bit-transparent because a slot is re-verified against the
// exact rate before its cached exponential is consumed.
type ExpTable struct {
	slots []expEntry
}

// NewExpTable allocates an empty shared memo.
func NewExpTable() *ExpTable {
	return &ExpTable{slots: make([]expEntry, 1<<expTabBits)}
}

// tickDemand advances the burst chain and returns this cycle's new
// demands. Bursts ramp to full intensity over RampCycles (kernels
// announce themselves through partial activity) and collapse twice as
// fast when they end.
func (g *generator) tickDemand() int {
	if g.bursting {
		if g.rng.Bernoulli(g.profile.BurstExit) {
			g.bursting = false
		}
	} else if g.rng.Bernoulli(g.profile.BurstEntry) {
		g.bursting = true
	}
	if g.profile.RampCycles == 0 {
		if g.bursting {
			g.level = 1
		} else {
			g.level = 0
		}
	} else if g.bursting {
		g.level += g.rampStep
		if g.level > 1 {
			g.level = 1
		}
	} else if g.level > 0 {
		g.level -= 2 * g.rampStep
		if g.level < 0 {
			g.level = 0
		}
	}
	rate := g.profile.BaseRate + g.level*g.rateSpan
	if rate != g.expFor {
		g.expFor = rate
		e := &g.expTab[(math.Float64bits(rate)*0x9E3779B97F4A7C15)>>(64-expTabBits)]
		if e.rate != rate {
			e.rate = rate
			e.exp = math.Exp(-rate)
		}
		g.expNegRate = e.exp
	}
	return g.rng.PoissonExp(rate, g.expNegRate)
}

// Workload wires a benchmark pair onto a network target: it owns the 32
// per-router per-class generators, schedules memory-side responses through
// the engine, releases MSHR credits on response delivery, and tallies the
// Figure 4 injection breakdown.
type Workload struct {
	engine *sim.Engine
	target Target
	pair   Pair

	// gens holds the generators by value: one contiguous block of
	// demand-process state (burst chains, MSHR windows, embedded RNG
	// streams) per workload, which is what lets a replicated run lay N
	// seeds' traffic state out back to back.
	gens   [config.NumClusterRouters][noc.NumClasses]generator
	rng    *sim.RNG
	nextID uint64

	// pool recycles packet storage: every workload packet terminates in
	// OnDeliver (requests after their response is scheduled, replies after
	// retiring, writebacks immediately), so steady-state traffic allocates
	// no packets at all.
	pool noc.Pool

	// respQ holds service-complete responses waiting for buffer space at
	// their source router, drained FIFO each cycle. Index is the
	// response's source router (clusters and L3).
	respQ [config.NumRouters][noc.NumClasses][]*noc.Packet
	// respMask has bit r*2+class set when respQ[r][class] is non-empty,
	// so the drain pass touches only occupied queues instead of scanning
	// all 34 (NumRouters x NumClasses fits a uint64).
	respMask uint64

	// tickPool, when set, fans the per-generator demand processes out
	// across workers each cycle; demandTask is the bound task so Run
	// never allocates. Everything shared (packet pool, nextID, buffer
	// pushes) stays on the sequential admit pass, so results are
	// byte-identical to the sequential tick.
	tickPool   *sim.TickPool
	demandTask func(worker, workers int)

	measuring bool
	// Injected counts packets accepted by the network during
	// measurement (Figure 4 numerator).
	Injected stats.ClassCounts
	// Retired counts requests whose response came back.
	Retired uint64
	// Shed counts demands dropped because the pending queue was full
	// (core stall).
	Shed uint64
}

// NewWorkload builds the generator set for a benchmark pair. The caller
// must register the returned workload with the engine before the network
// so demand is injected ahead of router arbitration each cycle.
func NewWorkload(engine *sim.Engine, target Target, pair Pair, seed uint64) (*Workload, error) {
	return NewWorkloadWithExpTable(engine, target, pair, seed, nil)
}

// NewWorkloadWithExpTable is NewWorkload with an explicit shared
// exp(-rate) memo; nil allocates a fresh one. The table must only be
// shared between workloads that tick on the same goroutine (lockstep
// replicas on one worker lane) — it is a plain memo with no
// synchronisation. Sharing never changes results, only memo hit rates.
func NewWorkloadWithExpTable(engine *sim.Engine, target Target, pair Pair, seed uint64, tab *ExpTable) (*Workload, error) {
	if err := pair.CPU.Validate(); err != nil {
		return nil, err
	}
	if err := pair.GPU.Validate(); err != nil {
		return nil, err
	}
	if pair.CPU.Class != noc.ClassCPU || pair.GPU.Class != noc.ClassGPU {
		return nil, fmt.Errorf("traffic: pair %s has mismatched classes", pair.Name())
	}
	if tab == nil {
		tab = NewExpTable()
	}
	w := &Workload{engine: engine, target: target, pair: pair, rng: sim.NewRNG(seed)}
	for r := 0; r < config.NumClusterRouters; r++ {
		w.gens[r][noc.ClassCPU].init(r, pair.CPU, w.rng.Fork(), tab)
		w.gens[r][noc.ClassGPU].init(r, pair.GPU, w.rng.Fork(), tab)
	}
	return w, nil
}

// init fills one in-place generator slot. rng's state is copied in by
// value: the fork happens in the same order NewWorkload always forked,
// so the draw sequences are unchanged.
func (g *generator) init(router int, profile Profile, rng *sim.RNG, tab *ExpTable) {
	g.router = router
	g.profile = profile
	g.rng = *rng
	g.expFor = math.NaN()
	g.expTab = tab.slots
	if profile.RampCycles != 0 {
		g.rampStep = 1 / float64(profile.RampCycles)
	}
	g.rateSpan = profile.BurstRate - profile.BaseRate
}

// StartMeasurement begins counting injections (end of warmup).
func (w *Workload) StartMeasurement() { w.measuring = true }

// StopMeasurement freezes the counts.
func (w *Workload) StopMeasurement() { w.measuring = false }

// SetTickPool installs (or removes, with nil) the worker pool that
// parallelises the demand phase. Each generator's demand process is
// self-contained (its RNG and burst chain are embedded), so workers
// advance disjoint generator partitions concurrently; the exp(-rate)
// memo is re-pointed to one table per worker because the shared memo is
// a plain unsynchronised cache. Memo sharing is value-transparent, so
// the split changes hit rates, never results.
func (w *Workload) SetTickPool(p *sim.TickPool) {
	w.tickPool = p
	if p == nil {
		return
	}
	if w.demandTask == nil {
		w.demandTask = w.runDemand
	}
	tabs := make([]*ExpTable, p.Workers())
	for i := range tabs {
		tabs[i] = NewExpTable()
	}
	for r := 0; r < config.NumClusterRouters; r++ {
		for class := 0; class < noc.NumClasses; class++ {
			// Router r is always advanced by worker r mod workers (see
			// runDemand), so this table assignment is race-free.
			w.gens[r][class].expTab = tabs[r%p.Workers()].slots
		}
	}
}

// runDemand is the pool task: advance the demand processes of a strided
// router partition, staging each generator's new demand count.
func (w *Workload) runDemand(worker, workers int) {
	for r := worker; r < config.NumClusterRouters; r += workers {
		for class := 0; class < noc.NumClasses; class++ {
			g := &w.gens[r][class]
			g.demand = g.tickDemand()
		}
	}
}

// Tick first drains queued responses, then generates demand and injects
// as many packets as credits and buffer space allow.
func (w *Workload) Tick(cycle int64) {
	w.drainResponses(cycle)
	if w.tickPool != nil {
		// Parallel demand, sequential admit: tickDemand only touches the
		// generator's own state, while admit orders every draw on the
		// shared packet pool and ID sequence exactly as the sequential
		// loop below does.
		w.tickPool.Run(w.demandTask)
		for r := 0; r < config.NumClusterRouters; r++ {
			for class := 0; class < noc.NumClasses; class++ {
				g := &w.gens[r][class]
				w.admit(g, g.demand, cycle)
			}
		}
		return
	}
	for r := 0; r < config.NumClusterRouters; r++ {
		for class := 0; class < noc.NumClasses; class++ {
			g := &w.gens[r][class]
			w.admit(g, g.tickDemand(), cycle)
		}
	}
}

// admit folds one generator's new demands into its pending window
// (shedding past MaxPending) and issues what MSHR credits and buffer
// space allow.
func (w *Workload) admit(g *generator, demand int, cycle int64) {
	g.pending += demand
	if over := g.pending - g.profile.MaxPending; over > 0 {
		g.pending = g.profile.MaxPending
		g.shed += uint64(over)
		if w.measuring {
			w.Shed += uint64(over)
		}
	}
	w.drain(g, cycle)
}

// drain issues pending demands until an MSHR or buffer limit stops it.
func (w *Workload) drain(g *generator, cycle int64) {
	for g.pending > 0 {
		isWriteback := g.rng.Bernoulli(g.profile.WriteFraction)
		if !isWriteback && g.outstanding >= g.profile.MaxOutstanding {
			return
		}
		p := w.buildPacket(g, isWriteback, cycle)
		if !w.target.Inject(p) {
			w.pool.Put(p) // buffer full; rebuild (fresh draws) next cycle
			return
		}
		g.pending--
		if !isWriteback {
			g.outstanding++
		}
		if w.measuring {
			w.Injected.Add(int(p.Class), p.SizeBits)
		}
	}
}

// buildPacket assembles a request or writeback from the generator's
// profile.
func (w *Workload) buildPacket(g *generator, writeback bool, cycle int64) *noc.Packet {
	w.nextID++
	dst := config.L3RouterID
	if !g.rng.Bernoulli(g.profile.L3Fraction) {
		dst = g.rng.Intn(config.NumClusterRouters - 1)
		if dst >= g.router {
			dst++ // skip self
		}
	}
	class := g.profile.Class
	if writeback {
		return w.pool.GetResponse(w.nextID, g.router, dst, class, writebackSource(class), cycle)
	}
	return w.pool.GetRequest(w.nextID, g.router, dst, class, w.requestSource(g), cycle)
}

// requestSource picks the cache level labelling a request, matching the
// Table III feature taxonomy.
func (w *Workload) requestSource(g *generator) noc.Source {
	u := g.rng.Float64()
	if g.profile.Class == noc.ClassCPU {
		switch {
		case u < 0.20:
			return noc.SrcCPUL1I
		case u < 0.70:
			return noc.SrcCPUL1D
		default:
			return noc.SrcCPUL2Down
		}
	}
	if u < 0.60 {
		return noc.SrcGPUL1
	}
	return noc.SrcGPUL2Down
}

// writebackSource labels dirty-eviction traffic as L2-down data.
func writebackSource(class noc.Class) noc.Source {
	if class == noc.ClassCPU {
		return noc.SrcCPUL2Down
	}
	return noc.SrcGPUL2Down
}

// OnDeliver must be called by the network when a packet reaches its
// destination router. It schedules the memory-side response for requests
// and releases the MSHR credit when a response returns home. Every
// delivered packet terminates here, so its storage is recycled into the
// pool — nothing may retain a delivered packet past this call.
func (w *Workload) OnDeliver(p *noc.Packet, cycle int64) {
	switch {
	case p.Kind == noc.KindRequest && p.WantsResponse:
		w.scheduleResponse(p, cycle)
	case p.Kind == noc.KindResponse && p.Dst < config.NumClusterRouters:
		// A response arriving home retires the original request, unless
		// it is writeback traffic terminating at a peer/L3 (handled by
		// the Dst check plus origin marker below).
		if g := w.originGenerator(p); g != nil {
			if g.outstanding > 0 {
				g.outstanding--
			}
			w.Retired++
		}
	}
	w.pool.Put(p)
}

// originGenerator maps a returning response to the generator that issued
// the request. Responses built by scheduleResponse carry the requester's
// class and terminate at the requester's router; writebacks never match
// because their Reply marker is false.
func (w *Workload) originGenerator(p *noc.Packet) *generator {
	if !p.Reply {
		return nil
	}
	return &w.gens[p.Dst][p.Class]
}

// scheduleResponse models the destination's service time, then injects the
// response into the destination router's input buffers (retrying while the
// buffer is full).
func (w *Workload) scheduleResponse(req *noc.Packet, cycle int64) {
	latency := int64(RemoteL2Cycles)
	src := noc.SrcCPUL2Up
	if req.Class == noc.ClassGPU {
		src = noc.SrcGPUL2Up
	}
	if req.Dst == config.L3RouterID {
		latency = L3HitCycles
		memFrac := w.pair.CPU.MemFraction
		if req.Class == noc.ClassGPU {
			memFrac = w.pair.GPU.MemFraction
		}
		if w.rng.Bernoulli(memFrac) {
			latency += MemExtraCycles
		}
		src = noc.SrcL3
	}
	w.nextID++
	resp := w.pool.GetResponse(w.nextID, req.Dst, req.Src, req.Class, src, cycle+latency)
	resp.Reply = true
	// Typed payload event instead of a closure: the response pointer rides
	// in the event itself, so scheduling the service completion allocates
	// nothing.
	w.engine.SchedulePayload(latency, w, resp, 0)
}

// HandleEvent implements sim.Handler for service-completion events: ptr is
// the finished response, released into its source router's pending queue.
func (w *Workload) HandleEvent(cycle int64, ptr any, _ int64) {
	resp := ptr.(*noc.Packet)
	resp.InjectCycle = cycle
	w.respQ[resp.Src][resp.Class] = append(w.respQ[resp.Src][resp.Class], resp)
	w.respMask |= 1 << (uint(resp.Src)*noc.NumClasses + uint(resp.Class))
}

// drainResponses injects queued responses FIFO, stopping per queue at the
// first buffer-full rejection. Ascending bit order visits (router, class)
// pairs exactly as the full nested scan would.
func (w *Workload) drainResponses(int64) {
	for mask := w.respMask; mask != 0; {
		b := uint(bits.TrailingZeros64(mask))
		mask &^= 1 << b
		r, class := b/noc.NumClasses, b%noc.NumClasses
		q := w.respQ[r][class]
		n := 0
		for _, p := range q {
			if !w.target.Inject(p) {
				break
			}
			n++
			if w.measuring {
				w.Injected.Add(int(p.Class), p.SizeBits)
			}
		}
		if n > 0 {
			remaining := copy(q, q[n:])
			for i := remaining; i < len(q); i++ {
				q[i] = nil
			}
			w.respQ[r][class] = q[:remaining]
			if remaining == 0 {
				w.respMask &^= 1 << b
			}
		}
	}
}

// Outstanding returns total in-flight requests across all generators
// (drain checks in tests).
func (w *Workload) Outstanding() int {
	total := 0
	for r := range w.gens {
		for c := range w.gens[r] {
			total += w.gens[r][c].outstanding
		}
	}
	return total
}

// Pending returns total queued-but-unissued demands.
func (w *Workload) Pending() int {
	total := 0
	for r := range w.gens {
		for c := range w.gens[r] {
			total += w.gens[r][c].pending
		}
	}
	return total
}
