package traffic

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Service latencies in network cycles for the memory-side components that
// answer requests.
const (
	// L3HitCycles is the shared L3 lookup latency.
	L3HitCycles = 24
	// MemExtraCycles is the additional main-memory latency on an L3 miss.
	MemExtraCycles = 120
	// RemoteL2Cycles is a peer cluster's L2 snoop/service latency.
	RemoteL2Cycles = 12
)

// Target is the network under test: it accepts packets at their source
// router. Inject returns false when the router's input buffer cannot take
// the packet this cycle; the workload retries.
type Target interface {
	Inject(p *noc.Packet) bool
}

// generator drives one traffic class at one cluster router: a two-state
// Markov-modulated Poisson demand process in front of a bounded MSHR
// window.
type generator struct {
	router  int
	profile Profile
	rng     *sim.RNG

	bursting    bool
	level       float64 // burst intensity in [0,1], ramping up/down
	pending     int     // demands waiting for an MSHR slot
	outstanding int     // requests in flight awaiting responses
	shed        uint64
}

// tickDemand advances the burst chain and returns this cycle's new
// demands. Bursts ramp to full intensity over RampCycles (kernels
// announce themselves through partial activity) and collapse twice as
// fast when they end.
func (g *generator) tickDemand() int {
	if g.bursting {
		if g.rng.Bernoulli(g.profile.BurstExit) {
			g.bursting = false
		}
	} else if g.rng.Bernoulli(g.profile.BurstEntry) {
		g.bursting = true
	}
	if g.profile.RampCycles == 0 {
		if g.bursting {
			g.level = 1
		} else {
			g.level = 0
		}
	} else {
		step := 1 / float64(g.profile.RampCycles)
		if g.bursting {
			g.level += step
			if g.level > 1 {
				g.level = 1
			}
		} else {
			g.level -= 2 * step
			if g.level < 0 {
				g.level = 0
			}
		}
	}
	rate := g.profile.BaseRate + g.level*(g.profile.BurstRate-g.profile.BaseRate)
	return g.rng.Poisson(rate)
}

// Workload wires a benchmark pair onto a network target: it owns the 32
// per-router per-class generators, schedules memory-side responses through
// the engine, releases MSHR credits on response delivery, and tallies the
// Figure 4 injection breakdown.
type Workload struct {
	engine *sim.Engine
	target Target
	pair   Pair

	gens   [config.NumClusterRouters][noc.NumClasses]*generator
	rng    *sim.RNG
	nextID uint64

	// respQ holds service-complete responses waiting for buffer space at
	// their source router, drained FIFO each cycle. Index is the
	// response's source router (clusters and L3).
	respQ [config.NumRouters][noc.NumClasses][]*noc.Packet

	measuring bool
	// Injected counts packets accepted by the network during
	// measurement (Figure 4 numerator).
	Injected stats.ClassCounts
	// Retired counts requests whose response came back.
	Retired uint64
	// Shed counts demands dropped because the pending queue was full
	// (core stall).
	Shed uint64
}

// NewWorkload builds the generator set for a benchmark pair. The caller
// must register the returned workload with the engine before the network
// so demand is injected ahead of router arbitration each cycle.
func NewWorkload(engine *sim.Engine, target Target, pair Pair, seed uint64) (*Workload, error) {
	if err := pair.CPU.Validate(); err != nil {
		return nil, err
	}
	if err := pair.GPU.Validate(); err != nil {
		return nil, err
	}
	if pair.CPU.Class != noc.ClassCPU || pair.GPU.Class != noc.ClassGPU {
		return nil, fmt.Errorf("traffic: pair %s has mismatched classes", pair.Name())
	}
	w := &Workload{engine: engine, target: target, pair: pair, rng: sim.NewRNG(seed)}
	for r := 0; r < config.NumClusterRouters; r++ {
		w.gens[r][noc.ClassCPU] = &generator{router: r, profile: pair.CPU, rng: w.rng.Fork()}
		w.gens[r][noc.ClassGPU] = &generator{router: r, profile: pair.GPU, rng: w.rng.Fork()}
	}
	return w, nil
}

// StartMeasurement begins counting injections (end of warmup).
func (w *Workload) StartMeasurement() { w.measuring = true }

// StopMeasurement freezes the counts.
func (w *Workload) StopMeasurement() { w.measuring = false }

// Tick first drains queued responses, then generates demand and injects
// as many packets as credits and buffer space allow.
func (w *Workload) Tick(cycle int64) {
	w.drainResponses(cycle)
	for r := 0; r < config.NumClusterRouters; r++ {
		for class := 0; class < noc.NumClasses; class++ {
			g := w.gens[r][class]
			demand := g.tickDemand()
			g.pending += demand
			if over := g.pending - g.profile.MaxPending; over > 0 {
				g.pending = g.profile.MaxPending
				g.shed += uint64(over)
				if w.measuring {
					w.Shed += uint64(over)
				}
			}
			w.drain(g, cycle)
		}
	}
}

// drain issues pending demands until an MSHR or buffer limit stops it.
func (w *Workload) drain(g *generator, cycle int64) {
	for g.pending > 0 {
		isWriteback := g.rng.Bernoulli(g.profile.WriteFraction)
		if !isWriteback && g.outstanding >= g.profile.MaxOutstanding {
			return
		}
		p := w.buildPacket(g, isWriteback, cycle)
		if !w.target.Inject(p) {
			return // input buffer full; retry next cycle
		}
		g.pending--
		if !isWriteback {
			g.outstanding++
		}
		if w.measuring {
			w.Injected.Add(int(p.Class), p.SizeBits)
		}
	}
}

// buildPacket assembles a request or writeback from the generator's
// profile.
func (w *Workload) buildPacket(g *generator, writeback bool, cycle int64) *noc.Packet {
	w.nextID++
	dst := config.L3RouterID
	if !g.rng.Bernoulli(g.profile.L3Fraction) {
		dst = g.rng.Intn(config.NumClusterRouters - 1)
		if dst >= g.router {
			dst++ // skip self
		}
	}
	class := g.profile.Class
	if writeback {
		p := noc.NewResponse(w.nextID, g.router, dst, class, writebackSource(class), cycle)
		return p
	}
	p := noc.NewRequest(w.nextID, g.router, dst, class, w.requestSource(g), cycle)
	return p
}

// requestSource picks the cache level labelling a request, matching the
// Table III feature taxonomy.
func (w *Workload) requestSource(g *generator) noc.Source {
	u := g.rng.Float64()
	if g.profile.Class == noc.ClassCPU {
		switch {
		case u < 0.20:
			return noc.SrcCPUL1I
		case u < 0.70:
			return noc.SrcCPUL1D
		default:
			return noc.SrcCPUL2Down
		}
	}
	if u < 0.60 {
		return noc.SrcGPUL1
	}
	return noc.SrcGPUL2Down
}

// writebackSource labels dirty-eviction traffic as L2-down data.
func writebackSource(class noc.Class) noc.Source {
	if class == noc.ClassCPU {
		return noc.SrcCPUL2Down
	}
	return noc.SrcGPUL2Down
}

// OnDeliver must be called by the network when a packet reaches its
// destination router. It schedules the memory-side response for requests
// and releases the MSHR credit when a response returns home.
func (w *Workload) OnDeliver(p *noc.Packet, cycle int64) {
	switch {
	case p.Kind == noc.KindRequest && p.WantsResponse:
		w.scheduleResponse(p, cycle)
	case p.Kind == noc.KindResponse && p.Dst < config.NumClusterRouters:
		// A response arriving home retires the original request, unless
		// it is writeback traffic terminating at a peer/L3 (handled by
		// the Dst check plus origin marker below).
		if g := w.originGenerator(p); g != nil {
			if g.outstanding > 0 {
				g.outstanding--
			}
			w.Retired++
		}
	}
}

// originGenerator maps a returning response to the generator that issued
// the request. Responses built by scheduleResponse carry the requester's
// class and terminate at the requester's router; writebacks never match
// because their Reply marker is false.
func (w *Workload) originGenerator(p *noc.Packet) *generator {
	if !p.Reply {
		return nil
	}
	return w.gens[p.Dst][p.Class]
}

// scheduleResponse models the destination's service time, then injects the
// response into the destination router's input buffers (retrying while the
// buffer is full).
func (w *Workload) scheduleResponse(req *noc.Packet, cycle int64) {
	latency := int64(RemoteL2Cycles)
	src := noc.SrcCPUL2Up
	if req.Class == noc.ClassGPU {
		src = noc.SrcGPUL2Up
	}
	if req.Dst == config.L3RouterID {
		latency = L3HitCycles
		memFrac := w.pair.CPU.MemFraction
		if req.Class == noc.ClassGPU {
			memFrac = w.pair.GPU.MemFraction
		}
		if w.rng.Bernoulli(memFrac) {
			latency += MemExtraCycles
		}
		src = noc.SrcL3
	}
	w.nextID++
	resp := noc.NewResponse(w.nextID, req.Dst, req.Src, req.Class, src, cycle+latency)
	resp.Reply = true
	w.engine.Schedule(latency, func(c int64) {
		resp.InjectCycle = c
		w.respQ[resp.Src][resp.Class] = append(w.respQ[resp.Src][resp.Class], resp)
	})
}

// drainResponses injects queued responses FIFO, stopping per queue at the
// first buffer-full rejection.
func (w *Workload) drainResponses(int64) {
	for r := 0; r < config.NumRouters; r++ {
		for class := 0; class < noc.NumClasses; class++ {
			q := w.respQ[r][class]
			n := 0
			for _, p := range q {
				if !w.target.Inject(p) {
					break
				}
				n++
				if w.measuring {
					w.Injected.Add(int(p.Class), p.SizeBits)
				}
			}
			if n > 0 {
				remaining := copy(q, q[n:])
				for i := remaining; i < len(q); i++ {
					q[i] = nil
				}
				w.respQ[r][class] = q[:remaining]
			}
		}
	}
}

// Outstanding returns total in-flight requests across all generators
// (drain checks in tests).
func (w *Workload) Outstanding() int {
	total := 0
	for r := range w.gens {
		for c := range w.gens[r] {
			total += w.gens[r][c].outstanding
		}
	}
	return total
}

// Pending returns total queued-but-unissued demands.
func (w *Workload) Pending() int {
	total := 0
	for r := range w.gens {
		for c := range w.gens[r] {
			total += w.gens[r][c].pending
		}
	}
	return total
}
