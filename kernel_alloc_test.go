// Steady-state allocation test for the cycle kernel. The benchmark in
// kernel_bench_test.go reports allocs/cycle, but a benchmark only warns;
// this test makes the zero-alloc property a hard invariant so a stray
// closure, interface boxing or append on the hot path fails CI instead
// of silently eroding the rewrite.
//
// Excluded under -race: the race runtime instruments allocations and
// AllocsPerRun observes its bookkeeping, so the count is meaningless
// there.
//
//go:build !race

package pearl

import "testing"

// TestKernelSteadyStateZeroAllocs drives the warmed PEARL-Dyn kernel —
// all 17 routers injecting under the fmm/DCT workload, saturating the
// arbiter every cycle — and asserts that stepping allocates nothing.
// After warmup every structure the kernel touches (ring-calendar slots,
// circular-queue buffers, the packet pool, response queues) has reached
// its high-water capacity, so any allocation here is a regression, not
// growth.
func TestKernelSteadyStateZeroAllocs(t *testing.T) {
	engine := buildPEARLKernel(t)
	const cycles = 5000
	if allocs := testing.AllocsPerRun(cycles, func() { engine.Step() }); allocs != 0 {
		t.Fatalf("steady-state kernel allocates: %v allocs/cycle over %d cycles, want 0", allocs, cycles)
	}
}
