// Kernel benchmarks: the simulation inner loop (Engine.Step ->
// Network.Tick -> 17x Router.tick) that every figure, batch point and
// pearld job ultimately spends its time in. One op is one network cycle,
// so ns/op reads as ns/cycle and allocs/op as allocs/cycle; cycles_per_sec
// is reported as a derived metric. BENCH_kernel.json records the
// before/after numbers for the allocation-free kernel rewrite, and
// cmd/benchgate compares fresh runs against that baseline in CI.
package pearl

import (
	"runtime"
	"testing"

	"repro/internal/cmesh"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// kernelWarmupCycles brings the workload and buffers to steady state
// before timing starts, so the numbers reflect the sustained regime a
// fig5-style sweep runs in, not cold-start growth.
const kernelWarmupCycles = 2000

// buildPEARLKernel wires the standard PEARL-Dyn stack exactly as
// experiments.RunPEARL does, minus measurement (the kernel itself is the
// subject, not the stats layer). It is shared with the steady-state
// allocation test in kernel_alloc_test.go.
func buildPEARLKernel(b testing.TB) *sim.Engine {
	b.Helper()
	engine := sim.NewEngine()
	net, err := core.New(engine, config.PEARLDyn())
	if err != nil {
		b.Fatal(err)
	}
	w, err := traffic.NewWorkload(engine, net, traffic.TestPairs()[0], 2018)
	if err != nil {
		b.Fatal(err)
	}
	net.SetDeliveryHandler(w.OnDeliver)
	engine.Register(w)
	engine.Register(net)
	engine.Run(kernelWarmupCycles)
	return engine
}

// BenchmarkKernel times the photonic crossbar's steady-state cycle loop.
func BenchmarkKernel(b *testing.B) {
	engine := buildPEARLKernel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Step()
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "cycles/sec")
	}
}

// benchReplicas and benchReplicaChunk fix the shape of the replicated
// kernel benchmark: 8 lockstep seeds stepped in 1024-cycle chunks —
// the same chunk length the context-aware replicated entry points use
// — with the cross-worker synchronisation at each chunk boundary
// inside the timed region.
const (
	benchReplicas     = 8
	benchReplicaChunk = 1024
)

// BenchmarkKernelReplicated times the lockstep replica engine at N=8 on
// the same PEARL-Dyn stack as BenchmarkKernel. One op is one
// replica-cycle, so ns/op here versus BenchmarkKernel's ns/op is the
// aggregate cycles·replicas/sec speedup of replicated over sequential
// execution — cmd/benchgate derives and gates that ratio in CI
// (scaled by GOMAXPROCS; a single-core runner can only break even).
func BenchmarkKernelReplicated(b *testing.B) {
	cfg := config.PEARLDyn()
	pair := traffic.TestPairs()[0]
	opts := experiments.Quick()
	seeds := experiments.ReplicaSeeds(opts.Seed, cfg.Name(), pair.Name(), benchReplicas)
	l, err := experiments.NewPEARLLockstep(cfg, pair, opts, seeds, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	l.Run(kernelWarmupCycles)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += benchReplicas * benchReplicaChunk {
		l.Run(benchReplicaChunk)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "replica_cycles/sec")
	}
}

// buildPEARLKernelParallel is buildPEARLKernel with a tick pool of the
// given worker count attached to both parallel phases (workload demand,
// router tick). The returned cleanup closes the pool's helpers.
func buildPEARLKernelParallel(b testing.TB, workers int) (*sim.Engine, func()) {
	b.Helper()
	engine := sim.NewEngine()
	net, err := core.New(engine, config.PEARLDyn())
	if err != nil {
		b.Fatal(err)
	}
	w, err := traffic.NewWorkload(engine, net, traffic.TestPairs()[0], 2018)
	if err != nil {
		b.Fatal(err)
	}
	net.SetDeliveryHandler(w.OnDeliver)
	engine.Register(w)
	engine.Register(net)
	pool := sim.NewTickPool(workers)
	net.SetTickPool(pool)
	w.SetTickPool(pool)
	engine.Run(kernelWarmupCycles)
	return engine, pool.Close
}

// benchTickWorkers sizes BenchmarkKernelParallelTick: up to 4 workers,
// never more than the runner has cores (oversubscribed helpers would
// only measure scheduler churn).
func benchTickWorkers() int {
	if procs := runtime.GOMAXPROCS(0); procs < 4 {
		return procs
	}
	return 4
}

// BenchmarkKernelParallelTick times the deterministic parallel tick on
// the same PEARL-Dyn stack as BenchmarkKernel. One op is one cycle, so
// BenchmarkKernel ns/op over this ns/op is the single-replica speedup;
// cmd/benchgate gates that ratio against BENCH_kernel.json's
// parallel_tick_gate (≥1.3x aggregate on multi-core runners; a
// single-core runner runs workers=1 and only has to hold the
// no-regression floor).
func BenchmarkKernelParallelTick(b *testing.B) {
	engine, closePool := buildPEARLKernelParallel(b, benchTickWorkers())
	defer closePool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Step()
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "cycles/sec")
	}
}

// BenchmarkKernelParallelTickW1 pins the workers=1 degenerate pool: the
// parallel kernel's bookkeeping (scratch recording, commit replay) with
// no helpers at all. Its baseline entry in BENCH_kernel.json is the
// workers=1 no-regression gate — this path must stay within tolerance
// of the sequential kernel.
func BenchmarkKernelParallelTickW1(b *testing.B) {
	engine, closePool := buildPEARLKernelParallel(b, 1)
	defer closePool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Step()
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "cycles/sec")
	}
}

// BenchmarkKernelCMESH times the electrical baseline's cycle loop, which
// shares the engine, buffers and workload with the photonic kernel.
func BenchmarkKernelCMESH(b *testing.B) {
	engine := sim.NewEngine()
	net, err := cmesh.New(engine, config.Default())
	if err != nil {
		b.Fatal(err)
	}
	w, err := traffic.NewWorkload(engine, net, traffic.TestPairs()[0], 2018)
	if err != nil {
		b.Fatal(err)
	}
	net.SetDeliveryHandler(w.OnDeliver)
	engine.Register(w)
	engine.Register(net)
	engine.Run(kernelWarmupCycles)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Step()
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "cycles/sec")
	}
}
