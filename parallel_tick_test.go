package pearl

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/traffic"
)

// The parallel tick's whole contract is byte-identity: a run with any
// TickWorkers count must produce exactly the Result the sequential
// kernel produces, down to float accumulation order. These tests
// compare entire Result structs (metrics histograms, power account
// internals, workload counters) rather than golden scalars, so any
// divergence anywhere in the stack fails them.

// parallelOptions keeps the worker-count sweep affordable while still
// crossing many reservation windows and laser state switches.
func parallelOptions() experiments.Options {
	opts := experiments.Quick()
	opts.WarmupCycles = 1000
	opts.MeasureCycles = 4000
	return opts
}

func runWithWorkers(t *testing.T, cfg config.Config, workers int, opts experiments.Options) experiments.Result {
	t.Helper()
	opts.TickWorkers = workers
	res, err := experiments.RunPEARL(cfg, traffic.TestPairs()[0], opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParallelTickBitIdentityPEARLDyn(t *testing.T) {
	opts := parallelOptions()
	want := runWithWorkers(t, config.PEARLDyn(), 0, opts)
	for _, workers := range []int{1, 2, 3, 4, 17, 64} {
		got := runWithWorkers(t, config.PEARLDyn(), workers, opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TickWorkers=%d diverged from sequential kernel:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestParallelTickBitIdentityFCFS covers the merged-class serializer
// path (startFCFS / mixed-class progress scan) that PEARLDyn never
// exercises.
func TestParallelTickBitIdentityFCFS(t *testing.T) {
	opts := parallelOptions()
	want := runWithWorkers(t, config.PEARLFCFS(), 0, opts)
	for _, workers := range []int{2, 4} {
		got := runWithWorkers(t, config.PEARLFCFS(), workers, opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TickWorkers=%d diverged from sequential kernel (FCFS)", workers)
		}
	}
}

// TestParallelTickBitIdentityGolden ties the parallel kernel to the
// frozen golden calibration: the full golden-length PEARLDyn run at 4
// workers must equal the sequential run that TestGoldenPEARLDyn pins.
func TestParallelTickBitIdentityGolden(t *testing.T) {
	want := runWithWorkers(t, config.PEARLDyn(), 0, goldenOptions())
	got := runWithWorkers(t, config.PEARLDyn(), 4, goldenOptions())
	if !reflect.DeepEqual(got, want) {
		t.Fatal("golden-length parallel run diverged from sequential kernel")
	}
}

// TestParallelTickGOMAXPROCSInvariance runs the parallel kernel with
// GOMAXPROCS pinned to 1: helpers only run when the coordinator yields,
// the harshest interleaving, and results must still be identical.
func TestParallelTickGOMAXPROCSInvariance(t *testing.T) {
	opts := parallelOptions()
	want := runWithWorkers(t, config.PEARLDyn(), 0, opts)
	prev := runtime.GOMAXPROCS(1)
	got := runWithWorkers(t, config.PEARLDyn(), 4, opts)
	runtime.GOMAXPROCS(prev)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("GOMAXPROCS=1 parallel run diverged from sequential kernel")
	}
}

// TestParallelTickWindowStreamIdentity pins the observation side
// channels: the OnWindow stream the SSE/stats layers consume must be
// identical under the parallel kernel, sample for sample.
func TestParallelTickWindowStreamIdentity(t *testing.T) {
	collect := func(workers int) []experiments.WindowStats {
		opts := parallelOptions()
		opts.TickWorkers = workers
		var wins []experiments.WindowStats
		opts.OnWindow = func(ws experiments.WindowStats) { wins = append(wins, ws) }
		if _, err := experiments.RunPEARL(config.PEARLDyn(), traffic.TestPairs()[0], opts, nil); err != nil {
			t.Fatal(err)
		}
		return wins
	}
	want := collect(0)
	got := collect(4)
	if len(want) == 0 {
		t.Fatal("window stream empty; test is vacuous")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel kernel changed the OnWindow sample stream")
	}
}

// TestParallelTickReplicatedComposition pins the composition rule:
// multi-seed lockstep replication forces the tick pool off, so a
// replicated run with TickWorkers set matches one without, seed for
// seed (which the replica goldens already tie to single runs).
func TestParallelTickReplicatedComposition(t *testing.T) {
	cfg := config.PEARLDyn()
	pair := traffic.TestPairs()[0]
	opts := parallelOptions()
	want, err := experiments.RunPEARLReplicated(cfg, pair, opts, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts.TickWorkers = 8
	got, err := experiments.RunPEARLReplicated(cfg, pair, opts, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("TickWorkers changed replicated results; composition rule broken")
	}
	// A single-seed "replicated" run keeps its pool and must also match.
	soloSeq, err := experiments.RunPEARLReplicated(cfg, pair, parallelOptions(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	soloPar, err := experiments.RunPEARLReplicated(cfg, pair, opts, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(soloPar[0].Metrics, soloSeq[0].Metrics) ||
		!reflect.DeepEqual(soloPar[0].Account, soloSeq[0].Account) {
		t.Fatal("single-seed lockstep with a tick pool diverged from sequential")
	}
}
