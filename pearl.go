// Package pearl is the public API of the PEARL reproduction — a
// power-efficient photonic network-on-chip for heterogeneous CPU-GPU
// multicores with dynamic bandwidth allocation, reactive laser power
// scaling and ridge-regression-based proactive power scaling, after
// Van Winkle, Kodi, Bunescu and Louri, "Extending the Power-Efficiency
// and Performance of Photonic Interconnects for Heterogeneous Multicores
// with Machine Learning" (HPCA 2018).
//
// The package re-exports the library's building blocks (simulation
// engine, photonic crossbar, electrical CMESH baseline, workloads, the
// ML pipeline) and offers one-call helpers for the common flows:
//
//	cfg := pearl.PEARLDyn()
//	res, err := pearl.Run(cfg, pearl.TestPairs()[0], pearl.QuickOptions())
//	fmt.Println(res.ThroughputBitsPerCycle(), res.Account.AverageLaserPowerW())
//
// Every experiment from the paper's evaluation section is reachable
// through Suite (Figure4 .. Figure11, NRMSE) and the cmd/pearlbench tool.
package pearl

import (
	"io"

	"repro/internal/cache"
	"repro/internal/cmesh"
	"repro/internal/config"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mlkit"
	"repro/internal/models"
	"repro/internal/noc"
	"repro/internal/photonic"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Core simulation types.
type (
	// Engine is the cycle-driven simulation kernel.
	Engine = sim.Engine
	// Config fully describes a network build (Table I/II parameters plus
	// the bandwidth/power policy knobs).
	Config = config.Config
	// Network is the PEARL optical crossbar.
	Network = core.Network
	// CMESH is the electrical concentrated-mesh baseline.
	CMESH = cmesh.Network
	// Packet is one network message.
	Packet = noc.Packet
	// WLState is a laser wavelength state (8-64 wavelengths).
	WLState = photonic.WLState
	// PowerAccount integrates laser/ring/electrical energy.
	PowerAccount = power.Account
	// Metrics is the delivered-traffic statistics bundle.
	Metrics = stats.Network
)

// Workload types.
type (
	// Pair is one CPU benchmark run simultaneously with one GPU
	// benchmark.
	Pair = traffic.Pair
	// Profile is a single benchmark's statistical traffic model.
	Profile = traffic.Profile
	// Workload drives a benchmark pair onto a network.
	Workload = traffic.Workload
	// CoherenceDriver replays memory accesses through the NMOESI cache
	// hierarchy, generating protocol traffic.
	CoherenceDriver = cache.Driver
	// TraceRecord is one captured injection event.
	TraceRecord = trace.Record
	// TracePlayer replays a captured trace into a network.
	TracePlayer = trace.Player
)

// Experiment and ML types.
type (
	// Options bound experiment cost and fidelity.
	Options = experiments.Options
	// Result is one simulation run's output.
	Result = experiments.Result
	// Table is a rendered figure/table.
	Table = experiments.Table
	// Suite reproduces the paper's full evaluation.
	Suite = experiments.Suite
	// TrainedModel is the deployable ridge predictor, packaged as a
	// versioned, content-hashed model artifact (see internal/models).
	TrainedModel = models.Artifact
	// ModelRegistry hosts named trained models for serving (pearld's
	// -model-dir store).
	ModelRegistry = models.Registry
	// Ridge is the closed-form regression of Eq. 4-6.
	Ridge = mlkit.Ridge
	// Dataset accumulates (features, label) examples.
	Dataset = mlkit.Dataset
	// Controller mints wavelength-state policies for one configuration
	// and declares its capabilities (see internal/controller).
	Controller = controller.Controller
)

// Configuration presets matching the paper's evaluated designs.
var (
	// DefaultConfig is PEARL-Dyn at a constant 64 wavelengths.
	DefaultConfig = config.Default
	// PEARLDyn is dynamic bandwidth allocation, static 64 WL.
	PEARLDyn = config.PEARLDyn
	// PEARLFCFS is the first-come first-served photonic baseline.
	PEARLFCFS = config.PEARLFCFS
	// DynRW builds reactive power scaling with the given window.
	DynRW = config.DynRW
	// MLRW builds ML power scaling with the given window and 8WL choice.
	MLRW = config.MLRW
	// StaticWL builds a fixed-wavelength PEARL-Dyn variant.
	StaticWL = config.StaticWL
)

// Benchmark suites (§IV.A).
var (
	// CPUBenchmarks lists the 12 PARSEC/SPLASH2-style CPU profiles.
	CPUBenchmarks = traffic.CPUProfiles
	// GPUBenchmarks lists the 12 OpenCL-SDK-style GPU profiles.
	GPUBenchmarks = traffic.GPUProfiles
	// BenchmarkByName looks a profile up in either suite.
	BenchmarkByName = traffic.ProfileByName
	// TrainingPairs crosses the 6+6 training benchmarks (36 pairs).
	TrainingPairs = traffic.TrainingPairs
	// ValidationPairs crosses the 2+2 validation benchmarks (4 pairs).
	ValidationPairs = traffic.ValidationPairs
	// TestPairs crosses the 4+4 Table IV test benchmarks (16 pairs).
	TestPairs = traffic.TestPairs
)

// Experiment option presets.
var (
	// FullOptions is the paper-faithful evaluation scale.
	FullOptions = experiments.Full
	// QuickOptions is a reduced scale for smoke runs and tests.
	QuickOptions = experiments.Quick
)

// NewEngine returns a 2 GHz network-clock simulation engine.
func NewEngine() *Engine { return sim.NewEngine() }

// NewNetwork builds a PEARL crossbar on the engine.
func NewNetwork(e *Engine, cfg Config) (*Network, error) { return core.New(e, cfg) }

// NewCMESH builds the electrical baseline on the engine.
func NewCMESH(e *Engine, cfg Config) (*CMESH, error) { return cmesh.New(e, cfg) }

// NewWorkload wires a benchmark pair to a network target.
func NewWorkload(e *Engine, target traffic.Target, pair Pair, seed uint64) (*Workload, error) {
	return traffic.NewWorkload(e, target, pair, seed)
}

// NewPowerAccount returns an energy accumulator at the network clock.
func NewPowerAccount() *PowerAccount {
	return power.NewAccount(config.NetworkFrequencyHz)
}

// NewSuite returns the full-evaluation driver.
func NewSuite(opts Options) *Suite { return experiments.NewSuite(opts) }

// Run simulates one photonic configuration on one benchmark pair. The
// configuration's registered controller drives the wavelength-state
// policy; model-needing configurations (PowerML) must go through
// RunWithModel or NewController instead.
func Run(cfg Config, pair Pair, opts Options) (Result, error) {
	return experiments.RunPEARL(cfg, pair, opts, nil)
}

// RunWithModel simulates an ML power-scaling configuration by building
// its controller around the trained model artifact.
func RunWithModel(cfg Config, pair Pair, opts Options, model *TrainedModel) (Result, error) {
	ctrl, err := controller.New(cfg, model)
	if err != nil {
		return Result{}, err
	}
	return experiments.RunPEARL(cfg, pair, opts, ctrl)
}

// NewController builds the registered wavelength-state controller for a
// configuration (model may be nil unless the controller needs one).
func NewController(cfg Config, model *TrainedModel) (Controller, error) {
	return controller.New(cfg, model)
}

// ControllerNames lists the registered controller policy names.
func ControllerNames() []string { return controller.Names() }

// RunCMESH simulates the electrical baseline (linkScale 1 matches the
// 64-wavelength photonic bisection).
func RunCMESH(pair Pair, opts Options, linkScale int) (Result, error) {
	return experiments.RunCMESH(config.Default(), pair, opts, linkScale)
}

// Train runs the paper's two-pass data collection and ridge fit for the
// given reservation window.
func Train(window int, opts Options) (*TrainedModel, error) {
	return experiments.Train(window, opts)
}

// Evaluate scores a trained model on the test pairs (the §IV.C NRMSE
// numbers).
func Evaluate(model *TrainedModel, opts Options) (experiments.Evaluation, error) {
	return experiments.Evaluate(model, opts)
}

// LoadModel reads a trained-model artifact (current format or the
// legacy pearltrain JSON), validating its content hash and feature
// schema.
func LoadModel(r io.Reader) (*TrainedModel, error) { return models.Load(r) }

// OpenModelRegistry opens a directory-backed model registry (empty dir
// means memory-only).
func OpenModelRegistry(dir string) (*ModelRegistry, error) { return models.OpenRegistry(dir) }

// NewCoherenceDriver wires a fresh NMOESI cache hierarchy to a network.
func NewCoherenceDriver(target cache.Injector, seed uint64) *CoherenceDriver {
	return cache.NewDriver(target, seed)
}
