package pearl

import (
	"bytes"
	"testing"
)

// smallOptions shrinks the quick preset further for API tests.
func smallOptions() Options {
	o := QuickOptions()
	o.MeasureCycles = 5000
	o.WarmupCycles = 1000
	o.CollectCycles = 6000
	o.Pairs = o.Pairs[:2]
	o.TrainPairs = o.TrainPairs[:3]
	o.ValPairs = o.ValPairs[:1]
	return o
}

func TestPublicAPISmoke(t *testing.T) {
	cfg := PEARLDyn()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	pair := TestPairs()[0]
	res, err := Run(cfg, pair, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputBitsPerCycle() <= 0 {
		t.Fatal("no throughput through the public API")
	}
}

func TestPublicCMESH(t *testing.T) {
	res, err := RunCMESH(TestPairs()[0], smallOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputBitsPerCycle() <= 0 {
		t.Fatal("no CMESH throughput")
	}
}

func TestPublicTrainEvaluateRoundTrip(t *testing.T) {
	opts := smallOptions()
	model, err := Train(500, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := RunWithModel(MLRW(500, true), TestPairs()[0], opts, model)
	if err != nil {
		t.Fatal(err)
	}
	// ML power scaling must save laser power vs the static baseline.
	base, err := Run(PEARLDyn(), TestPairs()[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Account.AverageLaserPowerW() >= base.Account.AverageLaserPowerW() {
		t.Fatalf("ML scaling saved nothing: %v vs %v",
			res.Account.AverageLaserPowerW(), base.Account.AverageLaserPowerW())
	}
	ev, err := Evaluate(model, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Examples == 0 {
		t.Fatal("evaluation saw no examples")
	}
}

func TestPublicBuildingBlocks(t *testing.T) {
	engine := NewEngine()
	net, err := NewNetwork(engine, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	acct := NewPowerAccount()
	net.SetAccount(acct)
	w, err := NewWorkload(engine, net, TestPairs()[1], 7)
	if err != nil {
		t.Fatal(err)
	}
	net.SetDeliveryHandler(w.OnDeliver)
	engine.Register(w)
	engine.Register(net)
	engine.Run(3000)
	if acct.DeliveredBits() == 0 {
		t.Fatal("manual wiring delivered nothing")
	}
}

func TestPublicCoherenceDriver(t *testing.T) {
	engine := NewEngine()
	net, err := NewNetwork(engine, PEARLDyn())
	if err != nil {
		t.Fatal(err)
	}
	d := NewCoherenceDriver(net, 3)
	engine.Register(d)
	engine.Register(net)
	engine.Run(3000)
	if d.InjectedPackets == 0 {
		t.Fatal("coherence driver injected nothing")
	}
}

func TestBenchmarkSuitesExposed(t *testing.T) {
	if len(CPUBenchmarks()) != 12 || len(GPUBenchmarks()) != 12 {
		t.Fatal("benchmark suites wrong size")
	}
	if len(TrainingPairs()) != 36 || len(ValidationPairs()) != 4 || len(TestPairs()) != 16 {
		t.Fatal("pair splits wrong size")
	}
	if _, err := BenchmarkByName("fmm"); err != nil {
		t.Fatal(err)
	}
}

func TestPresetNames(t *testing.T) {
	cases := map[string]Config{
		"PEARL-Dyn(64WL)":  PEARLDyn(),
		"PEARL-FCFS(64WL)": PEARLFCFS(),
		"Dyn RW500":        DynRW(500),
		"ML RW2000":        MLRW(2000, true),
		"PEARL-Dyn(16WL)":  StaticWL(16),
	}
	for want, cfg := range cases {
		if cfg.Name() != want {
			t.Errorf("Name() = %q, want %q", cfg.Name(), want)
		}
	}
}

func TestPublicCMESHBuilder(t *testing.T) {
	engine := NewEngine()
	net, err := NewCMESH(engine, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(engine, net, TestPairs()[2], 5)
	if err != nil {
		t.Fatal(err)
	}
	net.SetDeliveryHandler(w.OnDeliver)
	engine.Register(w)
	engine.Register(net)
	net.StartMeasurement()
	engine.Run(3000)
	net.StopMeasurement(3000)
	if net.Metrics().Delivered.TotalPackets() == 0 {
		t.Fatal("public CMESH builder delivered nothing")
	}
}

func TestPublicSuite(t *testing.T) {
	s := NewSuite(smallOptions())
	tbl, err := s.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("suite produced no rows")
	}
}
